#include "serve/session_manager.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "common/strings.hpp"
#include "core/export.hpp"
#include "data/csv.hpp"
#include "serialize/json.hpp"

namespace sisd::serve {

/// One named session slot. The entry mutex guards every non-atomic field
/// and is held for the whole of an operation; `resident`/`last_touch` are
/// atomics so the eviction scan can rank entries without taking their
/// locks.
struct SessionManager::SessionEntry {
  explicit SessionEntry(std::string session_name)
      : name(std::move(session_name)) {}

  const std::string name;

  std::mutex mu;
  bool closed = false;
  uint64_t generation = 0;
  std::unique_ptr<core::MiningSession> session;  ///< null while spilled
  std::string spill_text;  ///< in-memory spill (no spill_dir)
  std::string spill_path;  ///< on-disk spill
  /// The catalog pin this session holds (kept while spilled, so a
  /// dataset_ref spill snapshot always resolves on restore). Released on
  /// close / failed open / manager teardown.
  std::optional<uint64_t> pinned_fingerprint;

  std::atomic<bool> resident{false};
  std::atomic<uint64_t> last_touch{0};
};

struct SessionManager::Shard {
  mutable std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<SessionEntry>> sessions;
};

/// Entry + held entry lock, returned by `Lock`.
struct SessionManager::LockedSession {
  std::shared_ptr<SessionEntry> entry;
  std::unique_lock<std::mutex> lock;

  core::MiningSession& session() { return *entry->session; }
};

namespace {

IterationSummary Summarize(const core::IterationResult& iteration,
                           size_t index, const data::DataTable& desc) {
  IterationSummary out;
  out.index = index;
  out.location = iteration.location.Describe(desc);
  if (iteration.spread.has_value()) {
    out.spread = iteration.spread->Describe(desc);
  }
  out.spread_error = iteration.spread_error;
  out.si = iteration.location.score.si;
  out.coverage = iteration.location.pattern.subgroup.Coverage();
  out.candidates = iteration.candidates_evaluated;
  out.hit_time_budget = iteration.hit_time_budget;
  return out;
}

Status CheckGeneration(uint64_t current,
                       const std::optional<uint64_t>& expected) {
  if (expected.has_value() && *expected != current) {
    return Status::Conflict(StrFormat(
        "generation mismatch: session is at %llu, request expected %llu",
        static_cast<unsigned long long>(current),
        static_cast<unsigned long long>(*expected)));
  }
  return Status::OK();
}

}  // namespace

SessionManager::SessionManager(ServeConfig config)
    : SessionManager(std::move(config), nullptr) {}

SessionManager::SessionManager(
    ServeConfig config, std::shared_ptr<catalog::DatasetCatalog> catalog)
    : config_(std::move(config)), catalog_(std::move(catalog)) {
  config_.max_resident = std::max<size_t>(config_.max_resident, 1);
  config_.num_shards =
      std::min<size_t>(std::max<size_t>(config_.num_shards, 1), 4096);
  if (catalog_ == nullptr) {
    catalog::CatalogConfig catalog_config;
    catalog_config.max_bytes = config_.catalog_max_bytes;
    catalog_ = std::make_shared<catalog::DatasetCatalog>(catalog_config);
  }
  pool_ = std::make_shared<search::ThreadPool>(
      search::ThreadPool::ResolveNumThreads(config_.num_threads));
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionManager::~SessionManager() {
  // Release the catalog pins of still-open sessions: a shared catalog
  // outlives this manager, and orphaned pins would block dataset_drop
  // forever.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, entry] : shard->sessions) {
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      if (!entry->closed && entry->pinned_fingerprint.has_value()) {
        catalog_->Unpin(*entry->pinned_fingerprint);
        entry->pinned_fingerprint.reset();
      }
    }
  }
}

SessionManager::Shard& SessionManager::ShardFor(
    const std::string& name) const {
  return *shards_[std::hash<std::string>{}(name) % shards_.size()];
}

std::shared_ptr<SessionManager::SessionEntry> SessionManager::FindEntry(
    const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(name);
  return it == shard.sessions.end() ? nullptr : it->second;
}

void SessionManager::RemoveEntry(const std::string& name,
                                 const SessionEntry* expected) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(name);
  if (it != shard.sessions.end() && it->second.get() == expected) {
    shard.sessions.erase(it);
  }
}

std::string SessionManager::SpillPathFor(const std::string& name) const {
  if (config_.spill_dir.empty()) return "";
  // Sanitized name + name hash: collision-safe even when distinct names
  // sanitize identically ("a b" vs "a_b").
  std::string safe;
  safe.reserve(name.size());
  for (char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    safe.push_back(keep ? c : '_');
  }
  return StrFormat("%s/%s-%016zx.session.json", config_.spill_dir.c_str(),
                   safe.c_str(), std::hash<std::string>{}(name));
}

Status SessionManager::EnsureResident(SessionEntry* entry) {
  if (entry->session != nullptr) return Status::OK();
  // The spill stays untouched until the restore has succeeded, so a
  // failed restore (I/O error, codec failure) is retryable and never
  // destroys the only copy of the session state.
  std::string loaded;
  const std::string* text = nullptr;
  if (!entry->spill_path.empty()) {
    SISD_ASSIGN_OR_RETURN(read, serialize::ReadTextFile(entry->spill_path));
    loaded = std::move(read);
    text = &loaded;
  } else if (!entry->spill_text.empty()) {
    text = &entry->spill_text;
  } else {
    return Status::Unknown("session '" + entry->name +
                           "' has neither live state nor a spill snapshot");
  }
  SISD_ASSIGN_OR_RETURN(session, core::MiningSession::RestoreFromString(
                                     *text, catalog_.get()));
  entry->session = std::make_unique<core::MiningSession>(std::move(session));
  entry->session->set_thread_pool(pool_);
  // The live session owns the state again: drop the spill (including the
  // on-disk file — it is stale the moment the session mutates, and
  // leaving it would leak one snapshot per evict/restore/close cycle).
  entry->spill_text.clear();
  if (!entry->spill_path.empty()) {
    std::remove(entry->spill_path.c_str());
    entry->spill_path.clear();
  }
  entry->resident.store(true);
  resident_count_.fetch_add(1);
  restores_.fetch_add(1);
  return Status::OK();
}

Status SessionManager::EvictEntryLocked(SessionEntry* entry) {
  SISD_CHECK(entry->session != nullptr);
  // Catalog-origin sessions spill in dataset_ref form: the snapshot skips
  // the dataset bytes and the restore reuses the shared dataset + pool.
  // The entry's catalog pin stays held across the spill, so the ref always
  // resolves. Sessions without an origin (none are created by this
  // manager, but restores of foreign inline snapshots could lack one)
  // fall back to the self-contained inline form.
  std::string text =
      entry->session->SaveToString(core::SnapshotForm::kDatasetRef);
  if (!config_.spill_dir.empty()) {
    const std::string path = SpillPathFor(entry->name);
    SISD_RETURN_NOT_OK(serialize::WriteTextFile(path, text));
    entry->spill_path = path;
    entry->spill_text.clear();
  } else {
    entry->spill_text = std::move(text);
    entry->spill_path.clear();
  }
  entry->session.reset();
  entry->resident.store(false);
  resident_count_.fetch_sub(1);
  evictions_.fetch_add(1);
  return Status::OK();
}

void SessionManager::MaybeEvict() {
  while (resident_count_.load() > config_.max_resident) {
    // Rank resident entries by logical touch (coldest first). The scan
    // holds one shard lock at a time and no entry locks.
    std::vector<std::pair<uint64_t, std::shared_ptr<SessionEntry>>>
        candidates;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [name, entry] : shard->sessions) {
        if (entry->resident.load()) {
          candidates.emplace_back(entry->last_touch.load(), entry);
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    bool evicted = false;
    for (auto& [touch, entry] : candidates) {
      (void)touch;
      // Busy sessions (operation in flight) are skipped, not waited on.
      std::unique_lock<std::mutex> lock(entry->mu, std::try_to_lock);
      if (!lock.owns_lock()) continue;
      if (entry->closed || !entry->resident.load()) continue;
      if (EvictEntryLocked(entry.get()).ok()) {
        evicted = true;
        break;
      }
    }
    // Everything cold is busy or spilled already: give up for now; the
    // next operation re-runs the policy.
    if (!evicted) break;
  }
}

Result<SessionManager::LockedSession> SessionManager::Lock(
    const std::string& name) {
  std::shared_ptr<SessionEntry> entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("no session named '" + name + "'");
  }
  std::unique_lock<std::mutex> lock(entry->mu);
  if (entry->closed) {
    return Status::NotFound("session '" + name + "' is closed");
  }
  SISD_RETURN_NOT_OK(EnsureResident(entry.get()));
  entry->last_touch.store(NextTouch());
  return LockedSession{std::move(entry), std::move(lock)};
}

SessionInfo SessionManager::InfoLocked(const SessionEntry& entry) const {
  SISD_DCHECK(entry.session != nullptr);
  const core::MiningSession& session = *entry.session;
  SessionInfo info;
  info.name = entry.name;
  info.generation = entry.generation;
  info.iterations = session.history().size();
  info.constraints = session.assimilator().num_constraints();
  info.dataset = session.dataset().name;
  info.rows = session.dataset().num_rows();
  info.descriptions = session.dataset().num_descriptions();
  info.targets = session.dataset().num_targets();
  info.resident = true;
  return info;
}

Result<SessionInfo> SessionManager::Open(const std::string& name,
                                         data::Dataset dataset,
                                         core::MinerConfig config) {
  if (name.empty()) {
    return Status::InvalidArgument("session name must be non-empty");
  }
  SISD_ASSIGN_OR_RETURN(pinned,
                        catalog_->Intern(std::move(dataset), /*pin=*/true,
                                        /*retain=*/false));
  return OpenPinned(name, std::move(pinned), std::move(config));
}

Result<SessionInfo> SessionManager::OpenRef(const std::string& name,
                                            const std::string& dataset_ref,
                                            core::MinerConfig config) {
  if (name.empty()) {
    return Status::InvalidArgument("session name must be non-empty");
  }
  SISD_ASSIGN_OR_RETURN(
      pinned, catalog_->FindByNameOrFingerprint(dataset_ref, /*pin=*/true));
  return OpenPinned(name, std::move(pinned), std::move(config));
}

Result<SessionInfo> SessionManager::OpenPinned(const std::string& name,
                                               catalog::PinnedDataset pinned,
                                               core::MinerConfig config) {
  auto entry = std::make_shared<SessionEntry>(name);
  {
    Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.sessions.emplace(name, entry);
    if (!inserted) {
      catalog_->Unpin(pinned.fingerprint);
      return Status::AlreadyExists("session '" + name + "' already exists");
    }
  }
  // Built under the entry lock (racers block on it, not on the shard).
  // The condition pool comes from the catalog's artifact cache: the first
  // session on a (dataset, alphabet) pays the build, every later one
  // shares the same immutable instance.
  std::unique_lock<std::mutex> entry_lock(entry->mu);
  std::shared_ptr<const search::ConditionPool> shared_pool =
      catalog_->PoolFor(pinned, config.search.num_split_points,
                        config.search.include_exclusions);
  Result<core::MiningSession> session = core::MiningSession::Create(
      pinned.dataset, std::move(config), std::move(shared_pool),
      pinned.ref());
  if (!session.ok()) {
    entry->closed = true;
    entry_lock.unlock();
    RemoveEntry(name, entry.get());
    catalog_->Unpin(pinned.fingerprint);
    return session.status();
  }
  entry->session =
      std::make_unique<core::MiningSession>(std::move(session).MoveValue());
  entry->session->set_thread_pool(pool_);
  entry->pinned_fingerprint = pinned.fingerprint;
  entry->resident.store(true);
  resident_count_.fetch_add(1);
  opens_.fetch_add(1);
  entry->last_touch.store(NextTouch());
  SessionInfo info = InfoLocked(*entry);
  entry_lock.unlock();
  MaybeEvict();
  return info;
}

Result<MineOutcome> SessionManager::Mine(
    const std::string& name, int iterations,
    std::optional<uint64_t> if_generation) {
  if (iterations < 1) {
    return Status::InvalidArgument("mine needs iterations >= 1");
  }
  SISD_ASSIGN_OR_RETURN(locked, Lock(name));
  SISD_RETURN_NOT_OK(CheckGeneration(locked.entry->generation,
                                     if_generation));
  core::MiningSession& session = locked.session();
  MineOutcome outcome;
  for (int i = 0; i < iterations; ++i) {
    Result<core::IterationResult> iteration = session.MineNext();
    if (!iteration.ok()) {
      // An error on the first iteration mutated nothing: report it as the
      // request's failure. After at least one assimilated iteration the
      // session HAS moved, so the committed entries and new generation
      // must reach the client: exhaustion is the expected end of the
      // dialogue, anything else is surfaced via `stopped`.
      if (i == 0) return iteration.status();
      if (iteration.status().code() == StatusCode::kNotFound) {
        outcome.exhausted = true;
      } else {
        outcome.stopped = iteration.status().ToString();
      }
      break;
    }
    ++locked.entry->generation;
    outcome.iterations.push_back(Summarize(iteration.Value(),
                                           session.history().size(),
                                           session.dataset().descriptions));
  }
  outcome.generation = locked.entry->generation;
  locked.lock.unlock();
  MaybeEvict();
  return outcome;
}

Result<MineListOutcome> SessionManager::MineList(
    const std::string& name, int rules,
    std::optional<uint64_t> if_generation) {
  if (rules < 1) {
    return Status::InvalidArgument("mine_list needs rules >= 1");
  }
  SISD_ASSIGN_OR_RETURN(locked, Lock(name));
  SISD_RETURN_NOT_OK(CheckGeneration(locked.entry->generation,
                                     if_generation));
  core::MiningSession& session = locked.session();
  SISD_ASSIGN_OR_RETURN(result, session.MineList(rules));
  locked.entry->generation += result.rules.size();
  const search::SubgroupList* list = session.subgroup_list();
  SISD_CHECK(list != nullptr);  // MineList materializes the list
  MineListOutcome outcome;
  outcome.generation = locked.entry->generation;
  outcome.total_gain = list->total_gain;
  outcome.list_size = list->rules.size();
  outcome.uncovered = list->uncovered.count();
  outcome.candidates = result.candidates_evaluated;
  outcome.exhausted = result.exhausted;
  outcome.hit_time_budget = result.hit_time_budget;
  const size_t first = list->rules.size() - result.rules.size();
  for (size_t i = 0; i < result.rules.size(); ++i) {
    const search::SubgroupRule& rule = result.rules[i];
    RuleSummary summary;
    summary.index = first + i + 1;
    summary.description =
        rule.intention.ToString(session.dataset().descriptions);
    summary.gain = rule.gain;
    summary.coverage = rule.extension.count();
    summary.captured = rule.captured.count();
    outcome.rules.push_back(std::move(summary));
  }
  locked.lock.unlock();
  MaybeEvict();
  return outcome;
}

Result<RebaseInfo> SessionManager::Rebase(
    const std::string& name, const std::string& dataset_spec,
    std::optional<uint64_t> if_generation) {
  SISD_ASSIGN_OR_RETURN(locked, Lock(name));
  SISD_RETURN_NOT_OK(CheckGeneration(locked.entry->generation,
                                     if_generation));
  core::MiningSession& session = locked.session();
  // Every manager session is catalog-opened, so it always has a pin.
  SISD_CHECK(locked.entry->pinned_fingerprint.has_value());
  const uint64_t current_fp = *locked.entry->pinned_fingerprint;

  SISD_ASSIGN_OR_RETURN(
      target, catalog_->FindByNameOrFingerprint(dataset_spec, /*pin=*/true));
  RebaseInfo out;
  out.previous_fingerprint = current_fp;
  out.fingerprint = target.fingerprint;
  if (target.fingerprint == current_fp) {
    catalog_->Unpin(target.fingerprint);
    out.reused = true;
    out.info = InfoLocked(*locked.entry);
    return out;
  }
  if (!catalog_->IsDescendantOf(target.fingerprint, current_fp)) {
    catalog_->Unpin(target.fingerprint);
    return Status::InvalidArgument(
        "dataset '" + dataset_spec +
        "' is not an appended version of the session's current dataset");
  }
  // The pool comes from the artifact cache — `DatasetCatalog::Append` has
  // already refreshed the parent's pools incrementally for this version,
  // so this is a cache hit, not a scratch build.
  std::shared_ptr<const search::ConditionPool> pool = catalog_->PoolFor(
      target, session.config().search.num_split_points,
      session.config().search.include_exclusions);
  Result<core::RebaseOutcome> rebased =
      session.Rebase(target.dataset, std::move(pool), target.ref());
  if (!rebased.ok()) {
    catalog_->Unpin(target.fingerprint);
    return rebased.status();
  }
  // The target pin transfers to the entry; the old version's pin drops.
  catalog_->Unpin(current_fp);
  locked.entry->pinned_fingerprint = target.fingerprint;
  ++locked.entry->generation;
  out.appended_rows = rebased.Value().appended_rows;
  out.replayed_iterations = rebased.Value().replayed_iterations;
  out.replayed_rules = rebased.Value().replayed_rules;
  out.info = InfoLocked(*locked.entry);
  locked.lock.unlock();
  MaybeEvict();
  return out;
}

Result<MineOutcome> SessionManager::Assimilate(
    const std::string& name, const IntentionBuilder& builder,
    std::optional<uint64_t> if_generation) {
  SISD_ASSIGN_OR_RETURN(locked, Lock(name));
  SISD_RETURN_NOT_OK(CheckGeneration(locked.entry->generation,
                                     if_generation));
  core::MiningSession& session = locked.session();
  SISD_ASSIGN_OR_RETURN(intention, builder(session));
  SISD_ASSIGN_OR_RETURN(iteration, session.AssimilateIntention(intention));
  ++locked.entry->generation;
  MineOutcome outcome;
  outcome.generation = locked.entry->generation;
  outcome.iterations.push_back(Summarize(iteration,
                                         session.history().size(),
                                         session.dataset().descriptions));
  locked.lock.unlock();
  MaybeEvict();
  return outcome;
}

Result<std::vector<IterationSummary>> SessionManager::History(
    const std::string& name) {
  SISD_ASSIGN_OR_RETURN(locked, Lock(name));
  const core::MiningSession& session = locked.session();
  std::vector<IterationSummary> out;
  out.reserve(session.history().size());
  for (size_t i = 0; i < session.history().size(); ++i) {
    out.push_back(Summarize(session.history()[i], i + 1,
                            session.dataset().descriptions));
  }
  locked.lock.unlock();
  MaybeEvict();
  return out;
}

Result<std::string> SessionManager::ExportCsv(
    const std::string& name, const std::string& what,
    std::optional<size_t> iteration) {
  SISD_ASSIGN_OR_RETURN(locked, Lock(name));
  const core::MiningSession& session = locked.session();
  std::string csv;
  if (what == "history") {
    csv = data::WriteCsvText(core::IterationSummaryTable(
        session.history(), session.dataset().descriptions,
        session.dataset().target_names));
  } else if (what == "ranked") {
    if (session.history().empty()) {
      return Status::InvalidArgument("session has no iterations to export");
    }
    const size_t k = iteration.value_or(session.history().size());
    if (k < 1 || k > session.history().size()) {
      return Status::OutOfRange(StrFormat("iteration %zu outside 1..%zu", k,
                                          session.history().size()));
    }
    csv = data::WriteCsvText(core::RankedListTable(
        session.history()[k - 1], session.dataset().descriptions));
  } else {
    return Status::InvalidArgument("export 'what' must be history|ranked");
  }
  locked.lock.unlock();
  MaybeEvict();
  return csv;
}

Result<SaveOutcome> SessionManager::Save(const std::string& name,
                                         const std::string& path,
                                         bool dataset_ref) {
  SISD_ASSIGN_OR_RETURN(locked, Lock(name));
  std::string out_path = !path.empty() ? path : SpillPathFor(name);
  if (out_path.empty()) {
    return Status::InvalidArgument(
        "save needs a 'path' when the server has no spill directory");
  }
  const std::string text = locked.session().SaveToString(
      dataset_ref ? core::SnapshotForm::kDatasetRef
                  : core::SnapshotForm::kInlineDataset);
  SISD_RETURN_NOT_OK(serialize::WriteTextFile(out_path, text));
  locked.lock.unlock();
  MaybeEvict();
  return SaveOutcome{std::move(out_path), text.size()};
}

Status SessionManager::Evict(const std::string& name) {
  std::shared_ptr<SessionEntry> entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("no session named '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->closed) {
    return Status::NotFound("session '" + name + "' is closed");
  }
  if (entry->session == nullptr) return Status::OK();  // already spilled
  return EvictEntryLocked(entry.get());
}

Status SessionManager::Close(const std::string& name, bool save,
                             const std::string& path) {
  std::shared_ptr<SessionEntry> entry = FindEntry(name);
  if (entry == nullptr) {
    return Status::NotFound("no session named '" + name + "'");
  }
  std::unique_lock<std::mutex> lock(entry->mu);
  if (entry->closed) {
    return Status::NotFound("session '" + name + "' is closed");
  }
  // Captured before EnsureResident (which clears it): a spill file the
  // close does not deliberately keep must be removed, or every
  // evicted-then-closed session would leak a snapshot in spill_dir.
  std::string stale_spill = entry->spill_path;
  if (save) {
    SISD_RETURN_NOT_OK(EnsureResident(entry.get()));
    std::string out_path = !path.empty() ? path : SpillPathFor(name);
    if (out_path.empty()) {
      return Status::InvalidArgument(
          "close with save needs a 'path' when the server has no spill "
          "directory");
    }
    SISD_RETURN_NOT_OK(
        serialize::WriteTextFile(out_path, entry->session->SaveToString()));
    if (stale_spill == out_path) stale_spill.clear();  // kept on purpose
  }
  entry->closed = true;
  if (entry->session != nullptr) {
    entry->session.reset();
    entry->resident.store(false);
    resident_count_.fetch_sub(1);
  }
  entry->spill_text.clear();
  entry->spill_path.clear();
  if (entry->pinned_fingerprint.has_value()) {
    catalog_->Unpin(*entry->pinned_fingerprint);
    entry->pinned_fingerprint.reset();
  }
  if (!stale_spill.empty()) std::remove(stale_spill.c_str());
  lock.unlock();
  RemoveEntry(name, entry.get());
  closes_.fetch_add(1);
  return Status::OK();
}

Result<SessionInfo> SessionManager::Info(const std::string& name) {
  SISD_ASSIGN_OR_RETURN(locked, Lock(name));
  SessionInfo info = InfoLocked(*locked.entry);
  locked.lock.unlock();
  MaybeEvict();
  return info;
}

Result<core::MiningSession> SessionManager::CloneSession(
    const std::string& name) {
  SISD_ASSIGN_OR_RETURN(locked, Lock(name));
  core::MiningSession clone = locked.session().Clone();
  locked.lock.unlock();
  MaybeEvict();
  return clone;
}

std::vector<std::string> SessionManager::SessionNames() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, entry] : shard->sessions) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

ManagerStats SessionManager::Stats() const {
  ManagerStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.sessions += shard->sessions.size();
  }
  stats.resident = resident_count_.load();
  stats.max_resident = config_.max_resident;
  stats.opens = opens_.load();
  stats.evictions = evictions_.load();
  stats.restores = restores_.load();
  stats.closes = closes_.load();
  return stats;
}

}  // namespace sisd::serve
