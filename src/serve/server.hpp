/// \file server.hpp
/// \brief Transports for the sisd_serve protocol: a line loop over C++
/// streams (stdio, script files, string streams in tests) and a
/// loopback-TCP listener with one thread per connection. The scalable
/// epoll transport lives in serve/event_loop_server.hpp.
///
/// Both transports funnel through `ProcessRequest`, so every client sees
/// identical behaviour. Blank lines and lines starting with `#` are
/// skipped (request scripts can be commented); anything else yields
/// exactly one newline-terminated response line. Request lines are
/// bounded: a line longer than `max_line_bytes` (no newline for
/// megabytes) yields one `InvalidArgument` response and ends the
/// stream/connection instead of buffering without bound.

#ifndef SISD_SERVE_SERVER_HPP_
#define SISD_SERVE_SERVER_HPP_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "serve/metrics.hpp"
#include "serve/session_manager.hpp"

namespace sisd::serve {

/// \brief Default request-line length bound shared by every transport.
inline constexpr size_t kDefaultMaxLineBytes = 1 << 20;  // 1 MiB

/// \brief Structured result of handling one protocol line. Transports
/// count errors from `ok`/`code`, never by substring-searching the
/// response bytes (a payload may legitimately contain `"ok":false`).
struct RequestOutcome {
  std::string response;  ///< newline-terminated wire bytes ("" if skipped)
  std::string verb;      ///< parsed verb ("" when the line never parsed)
  bool skipped = false;  ///< blank/comment line: no response owed
  bool ok = false;       ///< the response carries `"ok":true`
  StatusCode code = StatusCode::kOk;  ///< error code when `!ok`
};

/// \brief Handles one protocol line (parse failures become ok:false
/// responses, never a crash). Records per-verb counts and measured
/// latency into `metrics` when non-null, and answers the `metrics` verb
/// from it.
RequestOutcome ProcessRequest(SessionManager& manager,
                              const std::string& line,
                              ServeMetrics* metrics = nullptr);

/// \brief Compatibility wrapper: just the wire bytes of `ProcessRequest`
/// ("" for blank/comment lines).
std::string ProcessRequestLine(SessionManager& manager,
                               const std::string& line);

/// \brief Request/error counters of one serve loop.
struct ServeLoopStats {
  uint64_t requests = 0;   ///< non-skipped lines processed
  uint64_t errors = 0;     ///< responses with ok:false
  uint64_t oversized = 0;  ///< lines dropped for exceeding the bound
};

/// \brief Stream-transport knobs.
struct ServeStreamOptions {
  size_t max_line_bytes = kDefaultMaxLineBytes;
  /// Shared metrics collector; when null the loop keeps a private one
  /// (so scripted `metrics` requests still answer).
  ServeMetrics* metrics = nullptr;
};

/// \brief Reads requests from `in` line by line until EOF, writing each
/// response to `out` (flushed per line, so pipes interleave correctly).
/// A line exceeding the bound answers `InvalidArgument` and ends the
/// loop — the stream analogue of a connection close.
ServeLoopStats ServeStream(SessionManager& manager, std::istream& in,
                           std::ostream& out,
                           const ServeStreamOptions& options = {});

/// \brief Thread-per-connection TCP knobs.
struct ServeTcpOptions {
  /// Connections accepted before the listener stops and the call
  /// returns once they finish (0 = serve forever).
  size_t max_connections = 0;
  size_t max_line_bytes = kDefaultMaxLineBytes;
  ServeMetrics* metrics = nullptr;
};

/// \brief Listens on loopback TCP `port` (0 = ephemeral) and serves each
/// connection on its own thread against the shared `manager`. Announces
/// `listening on 127.0.0.1:<port>` to `announce` once bound (parse this
/// to learn an ephemeral port). This is the pre-event-loop baseline
/// transport: no pipelining concurrency, no admission control — kept for
/// comparison benchmarks and small deployments.
Status ServeTcp(SessionManager& manager, int port, std::ostream& announce,
                const ServeTcpOptions& options = {});

/// \brief Back-compat overload (`max_connections` only).
Status ServeTcp(SessionManager& manager, int port, std::ostream& announce,
                size_t max_connections);

}  // namespace sisd::serve

#endif  // SISD_SERVE_SERVER_HPP_
