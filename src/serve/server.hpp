/// \file server.hpp
/// \brief Transports for the sisd_serve protocol: a line loop over C++
/// streams (stdio, script files, string streams in tests) and a
/// loopback-TCP listener with one thread per connection.
///
/// Both transports funnel through `ProcessRequestLine`, so every client
/// sees identical behaviour. Blank lines and lines starting with `#` are
/// skipped (request scripts can be commented); anything else yields
/// exactly one newline-terminated response line.

#ifndef SISD_SERVE_SERVER_HPP_
#define SISD_SERVE_SERVER_HPP_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "serve/session_manager.hpp"

namespace sisd::serve {

/// \brief Request/error counters of one serve loop.
struct ServeLoopStats {
  uint64_t requests = 0;  ///< non-skipped lines processed
  uint64_t errors = 0;    ///< responses with ok:false
};

/// \brief Handles one protocol line. Returns "" for blank/comment lines,
/// else the newline-terminated response (parse failures become ok:false
/// responses, never a crash).
std::string ProcessRequestLine(SessionManager& manager,
                               const std::string& line);

/// \brief Reads requests from `in` line by line until EOF, writing each
/// response to `out` (flushed per line, so pipes interleave correctly).
ServeLoopStats ServeStream(SessionManager& manager, std::istream& in,
                           std::ostream& out);

/// \brief Listens on loopback TCP `port` (0 = ephemeral) and serves each
/// connection on its own thread against the shared `manager`. Announces
/// `listening on 127.0.0.1:<port>` to `announce` once bound (parse this
/// to learn an ephemeral port). Returns after `max_connections`
/// connections were accepted and finished (0 = serve forever).
Status ServeTcp(SessionManager& manager, int port, std::ostream& announce,
                size_t max_connections = 0);

}  // namespace sisd::serve

#endif  // SISD_SERVE_SERVER_HPP_
