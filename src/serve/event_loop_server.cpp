#include "serve/event_loop_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/strings.hpp"
#include "serialize/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace sisd::serve {

using serialize::ProtocolRequest;
using serialize::ProtocolResponse;

namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One client connection. `in_buffer` and epoll registration state are
/// IO-thread-only; everything under `mu` is shared with the workers
/// (response bytes, in-flight count, liveness).
struct Connection {
  int fd = -1;
  uint64_t id = 0;

  std::string in_buffer;      // IO thread only
  bool want_write = false;    // IO thread only: EPOLLOUT armed
  bool input_stopped = false; // IO thread only: EOF seen or reads stopped

  std::mutex mu;
  std::string out_buffer;     // response bytes not yet written
  size_t out_offset = 0;      // bytes of out_buffer already written
  size_t inflight = 0;        // requests queued or executing
  bool close_after_flush = false;  // fatal: close once output drains
  bool dead = false;          // fd closed; workers drop responses
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// One parsed request bound for a worker.
struct WorkItem {
  ConnectionPtr conn;
  ProtocolRequest request;
  std::chrono::steady_clock::time_point enqueued_at;
};

/// Fixed worker pool over bounded per-key FIFO queues. A key (session
/// name, or a per-connection control key for sessionless verbs) is owned
/// by at most one worker at a time, so items of one key execute in
/// arrival order while distinct keys run concurrently.
class Dispatcher {
 public:
  Dispatcher(size_t num_workers, size_t queue_capacity,
             std::function<void(WorkItem&&)> handler,
             ServeMetrics* metrics)
      : capacity_(queue_capacity),
        handler_(std::move(handler)),
        metrics_(metrics) {
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Dispatcher() { Stop(); }

  /// False when the key's queue is full (the caller answers
  /// kUnavailable); true when the item was accepted.
  bool Enqueue(const std::string& key, WorkItem item) {
    std::lock_guard<std::mutex> lock(mu_);
    Queue& queue = queues_[key];
    if (queue.items.size() >= capacity_) {
      if (queue.items.empty() && !queue.active) queues_.erase(key);
      return false;
    }
    queue.items.push_back(std::move(item));
    ++pending_;
    if (metrics_ != nullptr) metrics_->OnEnqueued();
    if (!queue.active) {
      queue.active = true;
      ready_.push_back(key);
      cv_.notify_one();
    }
    return true;
  }

  /// Queued + executing items (the loop's idle check).
  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
  }

  /// Stops the workers once every queue is empty; idempotent.
  void Stop() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      idle_cv_.wait(lock, [this] { return pending_ == 0; });
      stop_ = true;
      cv_.notify_all();
    }
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

 private:
  struct Queue {
    std::deque<WorkItem> items;
    /// True while the key sits in `ready_` or a worker executes it —
    /// the single-owner bit behind the per-session ordering guarantee.
    bool active = false;
  };

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) {
        if (stop_) return;
        continue;
      }
      const std::string key = std::move(ready_.front());
      ready_.pop_front();
      auto it = queues_.find(key);
      SISD_CHECK(it != queues_.end() && !it->second.items.empty());
      WorkItem item = std::move(it->second.items.front());
      it->second.items.pop_front();
      if (metrics_ != nullptr) metrics_->OnDequeued();
      lock.unlock();
      handler_(std::move(item));
      lock.lock();
      --pending_;
      it = queues_.find(key);
      SISD_CHECK(it != queues_.end());
      if (it->second.items.empty()) {
        queues_.erase(it);
      } else {
        ready_.push_back(key);
        cv_.notify_one();
      }
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }

  const size_t capacity_;
  const std::function<void(WorkItem&&)> handler_;
  ServeMetrics* const metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::unordered_map<std::string, Queue> queues_;
  std::deque<std::string> ready_;
  size_t pending_ = 0;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

/// The whole loop state; lives on the calling thread's stack for the
/// duration of ServeEventLoop.
class EventLoop {
 public:
  EventLoop(SessionManager& manager, const EventLoopConfig& config,
            ServeMetrics* metrics, const std::atomic<bool>* shutdown)
      : manager_(manager),
        config_(config),
        metrics_(metrics),
        shutdown_(shutdown) {}

  ~EventLoop() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  Status Run(std::ostream& announce) {
    SISD_RETURN_NOT_OK(Listen(announce));
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) return Errno("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) return Errno("eventfd");
    SISD_RETURN_NOT_OK(Register(listen_fd_, EPOLLIN));
    SISD_RETURN_NOT_OK(Register(wake_fd_, EPOLLIN));
    if (metrics_ != nullptr) {
      metrics_->SetQueueCapacity(config_.queue_capacity);
    }

    dispatcher_ = std::make_unique<Dispatcher>(
        std::max<size_t>(config_.num_workers, 1), config_.queue_capacity,
        [this](WorkItem&& item) { Execute(std::move(item)); }, metrics_);

    std::vector<epoll_event> events(64);
    for (;;) {
      if (shutdown_ != nullptr && shutdown_->load() && !draining_) {
        BeginDrain();
      }
      if (listen_fd_ < 0 && connections_.empty() &&
          dispatcher_->pending() == 0) {
        break;  // drained: nothing left to serve or flush
      }
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()),
                                 /*timeout_ms=*/50);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = static_cast<int>(events[i].data.fd);
        if (fd == listen_fd_) {
          AcceptReady();
        } else if (fd == wake_fd_) {
          DrainWakeups();
        } else {
          OnConnectionEvent(fd, events[i].events);
        }
      }
    }
    dispatcher_->Stop();
    return Status::OK();
  }

 private:
  Status Listen(std::ostream& announce) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket");
    const int enable = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      return Status::IOError(StrFormat("bind 127.0.0.1:%d: %s",
                                       config_.port,
                                       std::strerror(errno)));
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) < 0) {
      return Errno("getsockname");
    }
    if (::listen(listen_fd_, 128) < 0) return Errno("listen");
    if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listener)");
    announce << "listening on 127.0.0.1:" << ntohs(addr.sin_port) << "\n";
    announce.flush();
    return Status::OK();
  }

  Status Register(int fd, uint32_t events) {
    epoll_event event{};
    event.events = events;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      return Errno("epoll_ctl(add)");
    }
    return Status::OK();
  }

  void Rearm(const ConnectionPtr& conn) {
    epoll_event event{};
    event.events = (conn->input_stopped ? 0u : unsigned(EPOLLIN)) |
                   (conn->want_write ? unsigned(EPOLLOUT) : 0u);
    event.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event);
  }

  void AcceptReady() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: drained the backlog
      }
      if (!SetNonBlocking(fd)) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conn->id = ++next_connection_id_;
      if (!Register(fd, EPOLLIN).ok()) {
        ::close(fd);
        continue;
      }
      connections_.emplace(fd, std::move(conn));
      if (metrics_ != nullptr) metrics_->OnConnectionOpened();
      ++accepted_;
      if (config_.max_connections != 0 &&
          accepted_ >= config_.max_connections) {
        CloseListener();
        return;
      }
    }
  }

  void CloseListener() {
    if (listen_fd_ < 0) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  /// SIGTERM / shutdown-flag path: stop accepting and reading, let
  /// queued work finish, flush, close.
  void BeginDrain() {
    draining_ = true;
    CloseListener();
    // Snapshot the fds: MaybeClose mutates connections_.
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    for (int fd : fds) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      ConnectionPtr conn = it->second;
      if (!conn->input_stopped) {
        conn->input_stopped = true;
        conn->in_buffer.clear();  // partial line: never became a request
        Rearm(conn);
      }
      MaybeClose(conn);
    }
  }

  void OnConnectionEvent(int fd, uint32_t events) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;  // already closed this sweep
    ConnectionPtr conn = it->second;
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
      Close(conn);
      return;
    }
    if ((events & EPOLLOUT) != 0) Flush(conn);
    if ((events & EPOLLIN) != 0 && !conn->input_stopped &&
        connections_.count(fd) != 0) {
      ReadReady(conn);
    }
  }

  void ReadReady(const ConnectionPtr& conn) {
    char chunk[65536];
    for (;;) {
      const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN: consumed all that is buffered
      }
      if (n == 0) {  // EOF: client finished pipelining
        conn->input_stopped = true;
        conn->in_buffer.clear();
        Rearm(conn);
        MaybeClose(conn);
        return;
      }
      conn->in_buffer.append(chunk, static_cast<size_t>(n));
      if (!ConsumeLines(conn)) return;  // connection poisoned
    }
  }

  /// Splits the input buffer into lines and dispatches each; enforces
  /// the line-length bound. False when the connection was poisoned
  /// (oversized line) and reading must stop.
  bool ConsumeLines(const ConnectionPtr& conn) {
    size_t pos;
    while ((pos = conn->in_buffer.find('\n')) != std::string::npos) {
      std::string line = conn->in_buffer.substr(0, pos);
      conn->in_buffer.erase(0, pos + 1);
      if (line.size() > config_.max_line_bytes) {
        PoisonOversized(conn);
        return false;
      }
      DispatchLine(conn, line);
      if (conn->dead) return false;  // slow-reader drop mid-burst
    }
    if (conn->in_buffer.size() > config_.max_line_bytes) {
      PoisonOversized(conn);
      return false;
    }
    return true;
  }

  /// One over-long request line: answer InvalidArgument, stop reading,
  /// close once the response flushed.
  void PoisonOversized(const ConnectionPtr& conn) {
    if (metrics_ != nullptr) metrics_->OnOversizedLine();
    conn->in_buffer.clear();
    conn->input_stopped = true;
    const std::string response =
        serialize::WriteResponseLine(serialize::MakeErrorResponse(
            ProtocolRequest{},
            Status::InvalidArgument(
                StrFormat("request line exceeds the %zu-byte bound",
                          config_.max_line_bytes))));
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out_buffer += response;
      conn->close_after_flush = true;
    }
    Rearm(conn);
    Flush(conn);
  }

  void DispatchLine(const ConnectionPtr& conn, const std::string& line) {
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') return;
    const auto start = std::chrono::steady_clock::now();
    Result<ProtocolRequest> parsed =
        serialize::ParseRequestLine(std::string(trimmed));
    if (!parsed.ok()) {
      if (metrics_ != nullptr) {
        metrics_->RecordRequest("", /*ok=*/false, ElapsedMicros(start));
      }
      SendNow(conn, serialize::MakeErrorResponse(ProtocolRequest{},
                                                 parsed.status()));
      return;
    }
    ProtocolRequest& request = parsed.Value();
    // Session requests serialize on the session's queue; sessionless
    // verbs (stats, metrics, catalog) serialize per connection. The
    // prefixes keep the two keyspaces disjoint for any session name.
    const std::string key =
        request.session.empty()
            ? "c:" + std::to_string(conn->id)
            : "s:" + request.session;
    // Header copy (id/verb/session, no params): the full request moves
    // into the work item, but a rejection must still echo the id.
    ProtocolRequest header;
    header.id = request.id;
    header.has_id = request.has_id;
    header.verb = request.verb;
    header.session = request.session;
    WorkItem item;
    item.conn = conn;
    item.enqueued_at = start;
    item.request = std::move(request);
    // inflight must rise BEFORE Enqueue: once the item is in the queue a
    // worker may execute it (and decrement) before this thread runs again.
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      ++conn->inflight;
    }
    if (!dispatcher_->Enqueue(key, std::move(item))) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        --conn->inflight;
      }
      // Admission control: full queue answers kUnavailable right away —
      // the client sees the id it sent, nothing about the session moved.
      if (metrics_ != nullptr) {
        metrics_->OnRejected();
        metrics_->RecordRequest(header.verb, /*ok=*/false,
                                ElapsedMicros(start));
      }
      SendNow(conn,
              serialize::MakeErrorResponse(
                  header,
                  Status::Unavailable(StrFormat(
                      "queue for this %s is full (%zu pending); retry",
                      header.session.empty() ? "connection" : "session",
                      config_.queue_capacity))));
      return;
    }
  }

  /// IO-thread-only response path (parse errors, rejections).
  void SendNow(const ConnectionPtr& conn, const ProtocolResponse& response) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out_buffer += serialize::WriteResponseLine(response);
    }
    Flush(conn);
  }

  /// Worker-side request execution: runs the verb, appends the response
  /// to the connection, pokes the IO thread.
  void Execute(WorkItem&& item) {
    const ProtocolResponse response =
        HandleRequest(manager_, item.request, metrics_);
    if (metrics_ != nullptr) {
      // Latency includes queue wait — the number a client actually sees.
      metrics_->RecordRequest(item.request.verb, response.ok,
                              ElapsedMicros(item.enqueued_at));
    }
    const std::string wire = serialize::WriteResponseLine(response);
    bool drop = false;
    {
      std::lock_guard<std::mutex> lock(item.conn->mu);
      SISD_CHECK(item.conn->inflight > 0);
      --item.conn->inflight;
      if (item.conn->dead) {
        drop = true;  // connection force-closed; response has no reader
      } else {
        item.conn->out_buffer += wire;
      }
    }
    if (drop) return;
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      flush_list_.push_back(item.conn);
    }
    const uint64_t one = 1;
    // A full eventfd counter (EAGAIN) still wakes the loop; best-effort.
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof(one));
  }

  void DrainWakeups() {
    uint64_t counter = 0;
    while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
    }
    std::vector<ConnectionPtr> pending;
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      pending.swap(flush_list_);
    }
    for (const ConnectionPtr& conn : pending) Flush(conn);
  }

  /// Writes as much buffered output as the socket takes; arms EPOLLOUT
  /// on partial writes, closes drained connections that owe nothing.
  void Flush(const ConnectionPtr& conn) {
    bool fatal = false;
    bool drained;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead) return;
      while (conn->out_offset < conn->out_buffer.size()) {
        const ssize_t n = ::write(
            conn->fd, conn->out_buffer.data() + conn->out_offset,
            conn->out_buffer.size() - conn->out_offset);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno != EAGAIN && errno != EWOULDBLOCK) fatal = true;
          break;
        }
        conn->out_offset += static_cast<size_t>(n);
      }
      if (conn->out_offset == conn->out_buffer.size()) {
        conn->out_buffer.clear();
        conn->out_offset = 0;
      } else if (conn->out_buffer.size() - conn->out_offset >
                 config_.max_write_buffer_bytes) {
        fatal = true;  // slow reader: unbounded buffering refused
      }
      drained = conn->out_buffer.empty();
    }
    if (fatal) {
      Close(conn);
      return;
    }
    const bool want_write = !drained;
    if (want_write != conn->want_write) {
      conn->want_write = want_write;
      Rearm(conn);
    }
    if (drained) MaybeClose(conn);
  }

  /// Closes the connection once it owes nothing: output flushed and no
  /// request queued or executing — and either the client is done
  /// (EOF / poisoned) or the loop is draining.
  void MaybeClose(const ConnectionPtr& conn) {
    bool close_now;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      const bool owes_nothing =
          conn->inflight == 0 && conn->out_buffer.empty();
      close_now = !conn->dead && owes_nothing &&
                  (conn->close_after_flush || conn->input_stopped ||
                   draining_);
    }
    if (close_now) Close(conn);
  }

  void Close(const ConnectionPtr& conn) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead) return;
      conn->dead = true;
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    connections_.erase(conn->fd);
    if (metrics_ != nullptr) metrics_->OnConnectionClosed();
  }

  SessionManager& manager_;
  const EventLoopConfig config_;
  ServeMetrics* const metrics_;
  const std::atomic<bool>* const shutdown_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  bool draining_ = false;
  size_t accepted_ = 0;
  uint64_t next_connection_id_ = 0;
  std::unordered_map<int, ConnectionPtr> connections_;

  std::unique_ptr<Dispatcher> dispatcher_;

  std::mutex flush_mu_;
  std::vector<ConnectionPtr> flush_list_;
};

}  // namespace

Status ServeEventLoop(SessionManager& manager, const EventLoopConfig& config,
                      std::ostream& announce, ServeMetrics* metrics,
                      const std::atomic<bool>* shutdown) {
  EventLoop loop(manager, config, metrics, shutdown);
  return loop.Run(announce);
}

}  // namespace sisd::serve
