/// \file metrics.hpp
/// \brief Serve-layer observability: per-verb request counters, a
/// fixed-bucket latency histogram (p50/p95/p99), connection and queue
/// gauges, and admission-control rejection counts.
///
/// One `ServeMetrics` instance is shared by a transport and every worker
/// that handles its requests; all methods are thread-safe and lock-free
/// (plain atomics), so recording never serializes the request path. The
/// `metrics` protocol verb renders a snapshot via `EncodeMetrics`.
///
/// Latency values are *measured wall-clock* — the one deliberate
/// exception to the protocol's determinism contract (every other verb is
/// a pure function of the request script; see docs/ARCHITECTURE.md).
/// Counters, by contrast, are deterministic for a given script on the
/// stdio/script transport.

#ifndef SISD_SERVE_METRICS_HPP_
#define SISD_SERVE_METRICS_HPP_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "serialize/json.hpp"

namespace sisd::catalog {
class DatasetCatalog;
}  // namespace sisd::catalog

namespace sisd::serve {

/// \brief Fixed-bucket latency histogram over microseconds.
///
/// Bucket `i` covers latencies in `(2^(i-1), 2^i]` µs (bucket 0 is
/// `[0, 1]` µs); the last bucket is open-ended. Quantile estimates report
/// the upper bound of the bucket the quantile falls in — conservative by
/// at most one power of two, allocation-free, and mergeable across
/// threads because recording is a single relaxed increment.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 40;  ///< up to ~2^39 µs ≈ 6.4 days

  /// Records one observation (relaxed atomics; safe from any thread).
  void Record(uint64_t micros);

  /// \brief One consistent-enough read of the histogram (counts may lag
  /// each other by in-flight recordings; totals are recomputed from the
  /// buckets so quantiles never exceed the reported count).
  struct Summary {
    uint64_t count = 0;
    uint64_t max_us = 0;
    double mean_us = 0.0;
    uint64_t p50_us = 0;
    uint64_t p95_us = 0;
    uint64_t p99_us = 0;
  };
  Summary Summarize() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

/// \brief Shared counters of one serve transport (see file comment).
class ServeMetrics {
 public:
  /// The fixed verb set tracked per-verb; anything else (unknown verbs,
  /// lines that never parsed into a request) lands in the final "invalid"
  /// slot. Order is the encoding order, so `metrics` output is stable.
  static constexpr const char* kVerbs[] = {
      "open",           "mine",         "assimilate",   "history",
      "export",         "save",         "evict",        "close",
      "stats",          "dataset_load", "dataset_list", "dataset_drop",
      "dataset_append", "rebase",       "metrics",      "invalid",
  };
  static constexpr size_t kNumVerbs = sizeof(kVerbs) / sizeof(kVerbs[0]);

  /// Slot of `verb` in `kVerbs` (the "invalid" slot when unknown).
  static size_t VerbSlot(const std::string& verb);

  /// Records one completed request: verb, success flag, and measured
  /// latency (parse → response bytes ready).
  void RecordRequest(const std::string& verb, bool ok, uint64_t latency_us);

  /// \name Connection gauges (TCP transports).
  /// @{
  void OnConnectionOpened();
  void OnConnectionClosed();
  /// @}

  /// \name Dispatch-queue gauges and admission control (event loop).
  /// @{
  void SetQueueCapacity(size_t capacity);
  void OnEnqueued();
  void OnDequeued();
  /// A request refused with kUnavailable because its queue was full.
  void OnRejected();
  /// @}

  /// A connection dropped for exceeding the request-line length bound.
  void OnOversizedLine();

  /// \name Snapshot reads (used by EncodeMetrics and tests).
  /// @{
  uint64_t requests() const;
  uint64_t errors() const;
  uint64_t rejected() const;
  uint64_t oversized_lines() const;
  uint64_t live_connections() const;
  uint64_t peak_connections() const;
  uint64_t connections_accepted() const;
  uint64_t queue_depth() const;
  uint64_t queue_peak() const;
  size_t queue_capacity() const;
  uint64_t VerbRequests(const std::string& verb) const;
  const LatencyHistogram& latency() const { return latency_; }
  /// @}

 private:
  struct VerbCounters {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
  };

  std::array<VerbCounters, kNumVerbs> verbs_{};
  LatencyHistogram latency_;
  std::atomic<uint64_t> live_connections_{0};
  std::atomic<uint64_t> peak_connections_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> queue_depth_{0};
  std::atomic<uint64_t> queue_peak_{0};
  std::atomic<uint64_t> queue_capacity_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> oversized_lines_{0};
};

/// \brief Renders the `metrics` verb payload: per-verb counts, latency
/// percentiles, connection/queue gauges, and (when `catalog` is non-null)
/// the dataset-catalog hit rates.
serialize::JsonValue EncodeMetrics(const ServeMetrics& metrics,
                                   const catalog::DatasetCatalog* catalog);

}  // namespace sisd::serve

#endif  // SISD_SERVE_METRICS_HPP_
