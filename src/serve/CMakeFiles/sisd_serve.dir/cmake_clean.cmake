file(REMOVE_RECURSE
  "CMakeFiles/sisd_serve.dir/event_loop_server.cpp.o"
  "CMakeFiles/sisd_serve.dir/event_loop_server.cpp.o.d"
  "CMakeFiles/sisd_serve.dir/metrics.cpp.o"
  "CMakeFiles/sisd_serve.dir/metrics.cpp.o.d"
  "CMakeFiles/sisd_serve.dir/server.cpp.o"
  "CMakeFiles/sisd_serve.dir/server.cpp.o.d"
  "CMakeFiles/sisd_serve.dir/service.cpp.o"
  "CMakeFiles/sisd_serve.dir/service.cpp.o.d"
  "CMakeFiles/sisd_serve.dir/session_manager.cpp.o"
  "CMakeFiles/sisd_serve.dir/session_manager.cpp.o.d"
  "libsisd_serve.a"
  "libsisd_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
