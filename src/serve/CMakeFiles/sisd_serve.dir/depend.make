# Empty dependencies file for sisd_serve.
# This may be replaced when dependencies are built.
