file(REMOVE_RECURSE
  "libsisd_serve.a"
)
