file(REMOVE_RECURSE
  "CMakeFiles/sisd_catalog.dir/artifact_cache.cpp.o"
  "CMakeFiles/sisd_catalog.dir/artifact_cache.cpp.o.d"
  "CMakeFiles/sisd_catalog.dir/dataset_catalog.cpp.o"
  "CMakeFiles/sisd_catalog.dir/dataset_catalog.cpp.o.d"
  "CMakeFiles/sisd_catalog.dir/fingerprint.cpp.o"
  "CMakeFiles/sisd_catalog.dir/fingerprint.cpp.o.d"
  "libsisd_catalog.a"
  "libsisd_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
