# Empty dependencies file for sisd_catalog.
# This may be replaced when dependencies are built.
