file(REMOVE_RECURSE
  "libsisd_catalog.a"
)
