/// \file artifact_cache.hpp
/// \brief Memoized derived search structures, keyed by dataset fingerprint.
///
/// The refinement alphabet of the beam search (`search::ConditionPool`) is
/// a pure function of (dataset, num_splits, include_exclusions) — the
/// Cortana-style setup the paper adopts in §III — so N sessions over one
/// dataset never need more than one copy. The cache hands out
/// `shared_ptr<const ConditionPool>`: sessions hold the pool immutably and
/// by reference, and a pool lives as long as any session (or the cache)
/// still points at it.
///
/// Thread-safe. A cache miss builds the pool *outside* the cache lock
/// (builds can take tens of milliseconds on wide datasets and must not
/// stall unrelated lookups); when two threads race on the same key the
/// first inserted pool wins and the duplicate is discarded — both callers
/// observe the same pointer, preserving the one-instance guarantee.

#ifndef SISD_CATALOG_ARTIFACT_CACHE_HPP_
#define SISD_CATALOG_ARTIFACT_CACHE_HPP_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "data/table.hpp"
#include "search/condition_pool.hpp"

namespace sisd::catalog {

/// \brief Per-fingerprint cache of condition pools (one entry per distinct
/// (fingerprint, num_splits, include_exclusions) triple).
class ArtifactCache {
 public:
  ArtifactCache() = default;

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Returns the memoized pool for the key, building it from
  /// `descriptions` on first use. `descriptions` must be the description
  /// table of the dataset `fingerprint` identifies — the cache trusts the
  /// caller on this (the catalog, which owns both, is the only caller).
  std::shared_ptr<const search::ConditionPool> PoolFor(
      uint64_t fingerprint, const data::DataTable& descriptions,
      int num_splits, bool include_exclusions);

  /// Number of cached pools for one dataset (the `pools` stat).
  size_t PoolCountFor(uint64_t fingerprint) const;

  /// Total cached pools across all datasets.
  size_t size() const;

  /// Drops every pool of `fingerprint` (on dataset drop). Sessions still
  /// holding the shared_ptr keep their pool alive; the cache just forgets.
  void DropPoolsFor(uint64_t fingerprint);

  /// Derives `child_fingerprint` pools incrementally from every cached
  /// pool of `parent_fingerprint` (bitsets extend in place for thresholds
  /// that didn't move; moved thresholds rebuild — bit-identical to a
  /// scratch build either way). `child_descriptions` must be the
  /// row-append child of the parent's table and `parent_rows` the
  /// parent's row count. A later `PoolFor` on the child then hits the
  /// cache instead of building from scratch. Returns the number of pools
  /// refreshed (keys the child already had are skipped). Refreshes count
  /// in `refreshes()`/`conditions_*()`, not in `hits()`/`builds()`.
  size_t RefreshPoolsFor(uint64_t parent_fingerprint,
                         uint64_t child_fingerprint,
                         const data::DataTable& child_descriptions,
                         size_t parent_rows);

  /// Lookups answered from the cache / lookups that built a pool (the
  /// serve layer's `metrics` verb reports the hit rate).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t builds() const { return builds_.load(std::memory_order_relaxed); }

  /// Incremental pool refreshes performed on dataset appends, and how
  /// many per-condition extensions they served by extending parent
  /// bitsets in place vs rebuilding (the incremental-vs-scratch gauges of
  /// the `metrics` verb).
  uint64_t refreshes() const {
    return refreshes_.load(std::memory_order_relaxed);
  }
  uint64_t conditions_reused() const {
    return conditions_reused_.load(std::memory_order_relaxed);
  }
  uint64_t conditions_rebuilt() const {
    return conditions_rebuilt_.load(std::memory_order_relaxed);
  }

 private:
  using Key = std::tuple<uint64_t, int, bool>;

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<const search::ConditionPool>> pools_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> builds_{0};
  std::atomic<uint64_t> refreshes_{0};
  std::atomic<uint64_t> conditions_reused_{0};
  std::atomic<uint64_t> conditions_rebuilt_{0};
};

}  // namespace sisd::catalog

#endif  // SISD_CATALOG_ARTIFACT_CACHE_HPP_
