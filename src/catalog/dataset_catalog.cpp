#include "catalog/dataset_catalog.hpp"

#include <algorithm>
#include <utility>

#include "common/strings.hpp"
#include "serialize/snapshot.hpp"

namespace sisd::catalog {

DatasetCatalog::DatasetCatalog(CatalogConfig config) : config_(config) {}

PinnedDataset DatasetCatalog::TouchLocked(Entry* entry, uint64_t fingerprint,
                                          bool pin, bool reused) {
  (reused ? hits_ : interns_).fetch_add(1, std::memory_order_relaxed);
  entry->last_touch = ++touch_clock_;
  if (pin) ++entry->pins;
  PinnedDataset out;
  out.dataset = entry->dataset;
  out.fingerprint = fingerprint;
  out.bytes = entry->bytes;
  out.reused = reused;
  return out;
}

void DatasetCatalog::EraseEntryLocked(
    std::map<uint64_t, Entry>::iterator it) {
  artifacts_.DropPoolsFor(it->first);
  total_bytes_ -= it->second.bytes;
  entries_.erase(it);
}

void DatasetCatalog::EnforceBudgetLocked() {
  if (config_.max_bytes == 0) return;
  while (total_bytes_ > config_.max_bytes) {
    // Coldest unpinned entry by logical touch clock.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == entries_.end() ||
          it->second.last_touch < victim->second.last_touch) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // everything live is pinned
    EraseEntryLocked(victim);
  }
}

Result<PinnedDataset> DatasetCatalog::Intern(data::Dataset dataset, bool pin,
                                             bool retain) {
  SISD_RETURN_NOT_OK(dataset.Validate());
  // Fingerprinting serializes the dataset — do it outside the lock.
  const std::string encoded = serialize::EncodeDataset(dataset).Write();
  const uint64_t fingerprint = FingerprintBytes(encoded);
  // Dedup-hit verification re-encodes the stored dataset, which can take
  // milliseconds for MB-scale data — never do that under mu_ (it would
  // stall every catalog operation behind each duplicate open). Pattern:
  // peek under the lock, verify outside it, re-lock to commit; retry when
  // the entry changed in between (rare: a concurrent drop + re-intern).
  for (;;) {
    std::shared_ptr<const data::Dataset> existing;
    std::string existing_name;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(fingerprint);
      if (it == entries_.end()) {
        Entry entry;
        entry.name = dataset.name;
        entry.bytes = encoded.size();
        entry.retain = retain;
        entry.dataset =
            std::make_shared<const data::Dataset>(std::move(dataset));
        auto [inserted, ok] = entries_.emplace(fingerprint,
                                               std::move(entry));
        SISD_CHECK(ok);
        total_bytes_ += inserted->second.bytes;
        PinnedDataset out =
            TouchLocked(&inserted->second, fingerprint, pin,
                        /*reused=*/false);
        EnforceBudgetLocked();
        // The budget policy never evicts pinned entries, but an unpinned
        // intern larger than the leftover budget can be its own victim —
        // fail loudly rather than confirm a registration that no longer
        // exists.
        if (entries_.find(fingerprint) == entries_.end()) {
          return Status::Conflict(StrFormat(
              "dataset '%s' (%zu bytes) does not fit the catalog byte "
              "budget (%zu bytes)",
              out.dataset->name.c_str(), out.bytes, config_.max_bytes));
        }
        return out;
      }
      // The fingerprint is an index, not the identity: a byte-length
      // mismatch is already proof of a collision; equal lengths are
      // verified outside the lock.
      existing_name = it->second.name;
      if (it->second.bytes == encoded.size()) {
        existing = it->second.dataset;
      }
    }
    if (existing == nullptr ||
        serialize::EncodeDataset(*existing).Write() != encoded) {
      return Status::Conflict(
          "fingerprint collision: dataset '" + dataset.name +
          "' hashes to " + FingerprintToHex(fingerprint) +
          " but its content differs from the registered dataset '" +
          existing_name + "'");
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end() || it->second.dataset != existing) {
      continue;  // dropped or replaced while verifying: retry
    }
    it->second.retain = it->second.retain || retain;
    return TouchLocked(&it->second, fingerprint, pin, /*reused=*/true);
  }
}

Result<PinnedDataset> DatasetCatalog::FindByName(const std::string& name,
                                                 bool pin) {
  std::lock_guard<std::mutex> lock(mu_);
  // Distinct content can legitimately share a name (e.g. two inline-CSV
  // opens); name-based resolution must then refuse rather than pick one
  // by map order.
  auto match = entries_.end();
  size_t matches = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.name == name) {
      match = it;
      ++matches;
    }
  }
  if (matches == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no catalog dataset named '" + name + "'");
  }
  if (matches > 1) {
    return Status::Conflict(StrFormat(
        "catalog name '%s' is ambiguous (%zu datasets share it); resolve "
        "by fingerprint instead",
        name.c_str(), matches));
  }
  return TouchLocked(&match->second, match->first, pin, /*reused=*/true);
}

Result<PinnedDataset> DatasetCatalog::FindByFingerprint(uint64_t fingerprint,
                                                        bool pin) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no catalog dataset with fingerprint " +
                            FingerprintToHex(fingerprint));
  }
  return TouchLocked(&it->second, fingerprint, pin, /*reused=*/true);
}

Result<PinnedDataset> DatasetCatalog::FindByNameOrFingerprint(
    const std::string& spec, bool pin) {
  Result<PinnedDataset> by_name = FindByName(spec, pin);
  if (by_name.ok()) return by_name;
  Result<uint64_t> fingerprint = FingerprintFromHex(spec);
  if (fingerprint.ok()) {
    Result<PinnedDataset> by_fp = FindByFingerprint(fingerprint.Value(), pin);
    if (by_fp.ok()) return by_fp;
  }
  return by_name.status();  // the name-based NotFound message
}

Result<PinnedDataset> DatasetCatalog::MatchEncoded(
    const std::string& encoded, bool pin) {
  const uint64_t fingerprint = FingerprintBytes(encoded);
  // Same peek / verify-outside-the-lock / commit pattern as Intern: the
  // equality check re-encodes the stored dataset and must not run under
  // mu_.
  for (;;) {
    std::shared_ptr<const data::Dataset> existing;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(fingerprint);
      if (it == entries_.end() || it->second.bytes != encoded.size()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound(
            "no catalog dataset with this exact content");
      }
      existing = it->second.dataset;
    }
    if (serialize::EncodeDataset(*existing).Write() != encoded) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return Status::NotFound("no catalog dataset with this exact content");
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end() || it->second.dataset != existing) {
      continue;  // dropped or replaced while verifying: retry
    }
    return TouchLocked(&it->second, fingerprint, pin, /*reused=*/true);
  }
}

Result<PinnedDataset> DatasetCatalog::Resolve(const DatasetRef& ref,
                                              bool pin) {
  Result<PinnedDataset> found = FindByFingerprint(ref.fingerprint, pin);
  if (!found.ok() && !ref.name.empty()) {
    return Status::NotFound(
        "catalog cannot resolve dataset_ref {fingerprint: " +
        FingerprintToHex(ref.fingerprint) + ", name: '" + ref.name +
        "'}: not loaded (dataset_load it first)");
  }
  return found;
}

void DatasetCatalog::Unpin(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return;
  if (it->second.pins > 0) --it->second.pins;
  // Implicitly interned entries live exactly as long as their sessions:
  // the last close frees the dataset (as per-session copies used to),
  // while retained (dataset_load/--preload) entries stay cached.
  if (it->second.pins == 0 && !it->second.retain) {
    EraseEntryLocked(it);
  }
}

Status DatasetCatalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto target = entries_.end();
  size_t name_matches = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.name == name) {
      target = it;
      ++name_matches;
    }
  }
  if (name_matches > 1) {
    return Status::Conflict(StrFormat(
        "catalog name '%s' is ambiguous (%zu datasets share it); drop by "
        "fingerprint instead",
        name.c_str(), name_matches));
  }
  if (target == entries_.end()) {
    // Fall back to the hex fingerprint form.
    Result<uint64_t> fingerprint = FingerprintFromHex(name);
    if (fingerprint.ok()) target = entries_.find(fingerprint.Value());
  }
  if (target == entries_.end()) {
    return Status::NotFound("no catalog dataset named '" + name + "'");
  }
  if (target->second.pins > 0) {
    return Status::Conflict(StrFormat(
        "dataset '%s' is pinned by %llu open session(s); close them first",
        target->second.name.c_str(),
        static_cast<unsigned long long>(target->second.pins)));
  }
  EraseEntryLocked(target);
  return Status::OK();
}

std::shared_ptr<const search::ConditionPool> DatasetCatalog::PoolFor(
    const PinnedDataset& pinned, int num_splits, bool include_exclusions) {
  SISD_CHECK(pinned.dataset != nullptr);
  return artifacts_.PoolFor(pinned.fingerprint, pinned.dataset->descriptions,
                            num_splits, include_exclusions);
}

std::vector<CatalogEntryInfo> DatasetCatalog::List() const {
  std::vector<CatalogEntryInfo> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [fingerprint, entry] : entries_) {
      CatalogEntryInfo info;
      info.name = entry.name;
      info.fingerprint = fingerprint;
      info.bytes = entry.bytes;
      info.sessions = entry.pins;
      info.rows = entry.dataset->num_rows();
      info.descriptions = entry.dataset->num_descriptions();
      info.targets = entry.dataset->num_targets();
      out.push_back(std::move(info));
    }
  }
  // Pool counts outside the registry lock (the artifact cache has its own).
  for (CatalogEntryInfo& info : out) {
    info.pools = artifacts_.PoolCountFor(info.fingerprint);
  }
  std::sort(out.begin(), out.end(),
            [](const CatalogEntryInfo& a, const CatalogEntryInfo& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

size_t DatasetCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t DatasetCatalog::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

CatalogStats DatasetCatalog::Stats() const {
  CatalogStats stats;
  stats.interns = interns_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.pool_builds = artifacts_.builds();
  stats.pool_hits = artifacts_.hits();
  return stats;
}

}  // namespace sisd::catalog
