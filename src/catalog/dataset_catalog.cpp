#include "catalog/dataset_catalog.hpp"

#include <algorithm>
#include <utility>

#include "common/strings.hpp"
#include "serialize/snapshot.hpp"

namespace sisd::catalog {

DatasetCatalog::DatasetCatalog(CatalogConfig config) : config_(config) {}

PinnedDataset DatasetCatalog::TouchLocked(Entry* entry, uint64_t fingerprint,
                                          bool pin, bool reused) {
  (reused ? hits_ : interns_).fetch_add(1, std::memory_order_relaxed);
  entry->last_touch = ++touch_clock_;
  if (pin) ++entry->pins;
  PinnedDataset out;
  out.dataset = entry->dataset;
  out.fingerprint = fingerprint;
  out.bytes = entry->bytes;
  out.reused = reused;
  return out;
}

void DatasetCatalog::EraseEntryLocked(
    std::map<uint64_t, Entry>::iterator it) {
  artifacts_.DropPoolsFor(it->first);
  total_bytes_ -= it->second.bytes;
  entries_.erase(it);
}

void DatasetCatalog::EnforceBudgetLocked() {
  if (config_.max_bytes == 0) return;
  while (total_bytes_ > config_.max_bytes) {
    // Coldest unpinned entry by logical touch clock.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == entries_.end() ||
          it->second.last_touch < victim->second.last_touch) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // everything live is pinned
    EraseEntryLocked(victim);
  }
}

Result<PinnedDataset> DatasetCatalog::Intern(data::Dataset dataset, bool pin,
                                             bool retain) {
  SISD_RETURN_NOT_OK(dataset.Validate());
  // Fingerprinting serializes the dataset — do it outside the lock.
  const std::string encoded = serialize::EncodeDataset(dataset).Write();
  const uint64_t fingerprint = FingerprintBytes(encoded);
  // Dedup-hit verification re-encodes the stored dataset, which can take
  // milliseconds for MB-scale data — never do that under mu_ (it would
  // stall every catalog operation behind each duplicate open). Pattern:
  // peek under the lock, verify outside it, re-lock to commit; retry when
  // the entry changed in between (rare: a concurrent drop + re-intern).
  for (;;) {
    std::shared_ptr<const data::Dataset> existing;
    std::string existing_name;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(fingerprint);
      if (it == entries_.end()) {
        Entry entry;
        entry.name = dataset.name;
        entry.bytes = encoded.size();
        entry.retain = retain;
        entry.dataset =
            std::make_shared<const data::Dataset>(std::move(dataset));
        auto [inserted, ok] = entries_.emplace(fingerprint,
                                               std::move(entry));
        SISD_CHECK(ok);
        total_bytes_ += inserted->second.bytes;
        PinnedDataset out =
            TouchLocked(&inserted->second, fingerprint, pin,
                        /*reused=*/false);
        EnforceBudgetLocked();
        // The budget policy never evicts pinned entries, but an unpinned
        // intern larger than the leftover budget can be its own victim —
        // fail loudly rather than confirm a registration that no longer
        // exists.
        if (entries_.find(fingerprint) == entries_.end()) {
          return Status::Conflict(StrFormat(
              "dataset '%s' (%zu bytes) does not fit the catalog byte "
              "budget (%zu bytes)",
              out.dataset->name.c_str(), out.bytes, config_.max_bytes));
        }
        return out;
      }
      // The fingerprint is an index, not the identity: a byte-length
      // mismatch is already proof of a collision; equal lengths are
      // verified outside the lock.
      existing_name = it->second.name;
      if (it->second.bytes == encoded.size()) {
        existing = it->second.dataset;
      }
    }
    if (existing == nullptr ||
        serialize::EncodeDataset(*existing).Write() != encoded) {
      return Status::Conflict(
          "fingerprint collision: dataset '" + dataset.name +
          "' hashes to " + FingerprintToHex(fingerprint) +
          " but its content differs from the registered dataset '" +
          existing_name + "'");
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end() || it->second.dataset != existing) {
      continue;  // dropped or replaced while verifying: retry
    }
    it->second.retain = it->second.retain || retain;
    return TouchLocked(&it->second, fingerprint, pin, /*reused=*/true);
  }
}

Result<PinnedDataset> DatasetCatalog::FindByName(const std::string& name,
                                                 bool pin) {
  std::lock_guard<std::mutex> lock(mu_);
  // Distinct content can legitimately share a name (e.g. two inline-CSV
  // opens); name-based resolution must then refuse rather than pick one
  // by map order.
  auto match = entries_.end();
  size_t matches = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.name == name) {
      match = it;
      ++matches;
    }
  }
  if (matches == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no catalog dataset named '" + name + "'");
  }
  if (matches > 1) {
    return Status::Conflict(StrFormat(
        "catalog name '%s' is ambiguous (%zu datasets share it); resolve "
        "by fingerprint instead",
        name.c_str(), matches));
  }
  return TouchLocked(&match->second, match->first, pin, /*reused=*/true);
}

Result<PinnedDataset> DatasetCatalog::FindByFingerprint(uint64_t fingerprint,
                                                        bool pin) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no catalog dataset with fingerprint " +
                            FingerprintToHex(fingerprint));
  }
  return TouchLocked(&it->second, fingerprint, pin, /*reused=*/true);
}

Result<PinnedDataset> DatasetCatalog::FindByNameOrFingerprint(
    const std::string& spec, bool pin) {
  Result<PinnedDataset> by_name = FindByName(spec, pin);
  if (by_name.ok()) return by_name;
  Result<uint64_t> fingerprint = FingerprintFromHex(spec);
  if (fingerprint.ok()) {
    Result<PinnedDataset> by_fp = FindByFingerprint(fingerprint.Value(), pin);
    if (by_fp.ok()) return by_fp;
  }
  return by_name.status();  // the name-based NotFound message
}

Result<PinnedDataset> DatasetCatalog::MatchEncoded(
    const std::string& encoded, bool pin) {
  const uint64_t fingerprint = FingerprintBytes(encoded);
  // Same peek / verify-outside-the-lock / commit pattern as Intern: the
  // equality check re-encodes the stored dataset and must not run under
  // mu_.
  for (;;) {
    std::shared_ptr<const data::Dataset> existing;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(fingerprint);
      if (it == entries_.end() || it->second.bytes != encoded.size()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return Status::NotFound(
            "no catalog dataset with this exact content");
      }
      existing = it->second.dataset;
    }
    if (serialize::EncodeDataset(*existing).Write() != encoded) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return Status::NotFound("no catalog dataset with this exact content");
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end() || it->second.dataset != existing) {
      continue;  // dropped or replaced while verifying: retry
    }
    return TouchLocked(&it->second, fingerprint, pin, /*reused=*/true);
  }
}

Result<PinnedDataset> DatasetCatalog::Resolve(const DatasetRef& ref,
                                              bool pin) {
  Result<PinnedDataset> found = FindByFingerprint(ref.fingerprint, pin);
  if (!found.ok() && !ref.name.empty()) {
    return Status::NotFound(
        "catalog cannot resolve dataset_ref {fingerprint: " +
        FingerprintToHex(ref.fingerprint) + ", name: '" + ref.name +
        "'}: not loaded (dataset_load it first)");
  }
  return found;
}

namespace {

/// Registered name of a child version: `<base>@v<depth+2>`, where base is
/// the parent's name with any existing `@v<digits>` suffix stripped (the
/// root is implicitly v1, its first child v2, ...).
std::string DeriveChildName(const std::string& parent_name,
                            size_t parent_depth) {
  std::string base = parent_name;
  const size_t at = base.rfind("@v");
  if (at != std::string::npos && at + 2 < base.size()) {
    bool all_digits = true;
    for (size_t i = at + 2; i < base.size(); ++i) {
      if (base[i] < '0' || base[i] > '9') {
        all_digits = false;
        break;
      }
    }
    if (all_digits) base = base.substr(0, at);
  }
  return StrFormat("%s@v%zu", base.c_str(), parent_depth + 2);
}

}  // namespace

Result<AppendOutcome> DatasetCatalog::Append(const std::string& parent_spec,
                                             const AppendBuilder& build_child,
                                             bool pin, bool retain) {
  SISD_CHECK(build_child != nullptr);
  // Temporary pin on the parent so a concurrent drop/evict cannot remove
  // it while the child is being built and registered.
  SISD_ASSIGN_OR_RETURN(parent,
                        FindByNameOrFingerprint(parent_spec, /*pin=*/true));
  const data::Dataset& parent_ds = *parent.dataset;
  const size_t row_offset = parent_ds.num_rows();

  Result<data::Dataset> child_result = build_child(parent_ds);
  Status invalid = child_result.ok() ? child_result.Value().Validate()
                                     : child_result.status();
  if (invalid.ok()) {
    const data::Dataset& child = child_result.Value();
    if (child.num_rows() < row_offset) {
      invalid = Status::InvalidArgument(StrFormat(
          "append builder shrank the dataset (%zu rows, parent has %zu)",
          child.num_rows(), row_offset));
    } else if (child.num_descriptions() != parent_ds.num_descriptions() ||
               child.target_names != parent_ds.target_names) {
      invalid = Status::InvalidArgument(
          "append builder changed the dataset schema");
    }
  }
  if (!invalid.ok()) {
    Unpin(parent.fingerprint);
    return invalid;
  }
  data::Dataset child = std::move(child_result).MoveValue();

  AppendOutcome out;
  out.parent_fingerprint = parent.fingerprint;
  out.row_offset = row_offset;
  out.appended_rows = child.num_rows() - row_offset;
  if (out.appended_rows == 0) {
    // Empty append: a no-op returning the parent entry itself.
    out.reused = true;
    out.dataset = parent;  // the temporary pin transfers to the caller...
    if (!pin) Unpin(parent.fingerprint);  // ...or is released
    return out;
  }

  // Chain identity + marginal accounting: both O(appended rows).
  const uint64_t child_fp =
      ChainFingerprintAppendedRows(parent.fingerprint, child, row_offset);
  const size_t marginal_bytes = AppendedRowsBytes(child, row_offset);

  bool evicted_self = false;
  for (;;) {
    std::shared_ptr<const data::Dataset> existing;
    uint64_t existing_parent = 0;
    size_t existing_offset = 0;
    std::string existing_name;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto pit = entries_.find(parent.fingerprint);
      SISD_CHECK(pit != entries_.end());  // we hold a pin
      auto it = entries_.find(child_fp);
      if (it == entries_.end()) {
        Entry entry;
        entry.name =
            DeriveChildName(pit->second.name, pit->second.ancestors.size());
        // Sibling versions of one parent share a depth; suffix the chain
        // fingerprint so name-based resolution stays unambiguous.
        for (const auto& [fp, existing_entry] : entries_) {
          if (existing_entry.name == entry.name) {
            entry.name += "-" + FingerprintToHex(child_fp).substr(0, 8);
            break;
          }
        }
        // The dataset carries its version name: serve responses and
        // name-based catalog lookups must address the child, not the
        // parent the builder copied the name from.
        child.name = entry.name;
        entry.bytes = marginal_bytes;
        entry.retain = retain;
        entry.parent_fingerprint = parent.fingerprint;
        entry.row_offset = row_offset;
        entry.shared_bytes = pit->second.shared_bytes + pit->second.bytes;
        entry.ancestors = pit->second.ancestors;
        entry.ancestors.push_back(parent.fingerprint);
        entry.dataset =
            std::make_shared<const data::Dataset>(std::move(child));
        auto [inserted, ok] = entries_.emplace(child_fp, std::move(entry));
        SISD_CHECK(ok);
        total_bytes_ += inserted->second.bytes;
        appends_.fetch_add(1, std::memory_order_relaxed);
        out.dataset =
            TouchLocked(&inserted->second, child_fp, pin, /*reused=*/false);
        EnforceBudgetLocked();
        // Self-victim check: the budget sweep may have evicted the entry
        // just created. Report outside the lock (Unpin re-locks).
        evicted_self = entries_.find(child_fp) == entries_.end();
        break;
      }
      // Chain-fingerprint hit: like Intern, the hash is only an index.
      // Verify the stored entry really is this exact append (same parent,
      // same offset, identical appended rows) outside the lock.
      existing = it->second.dataset;
      existing_parent = it->second.parent_fingerprint;
      existing_offset = it->second.row_offset;
      existing_name = it->second.name;
    }
    if (existing_parent != parent.fingerprint ||
        existing_offset != row_offset ||
        !AppendedRowsEqual(*existing, child, row_offset)) {
      Unpin(parent.fingerprint);
      return Status::Conflict(
          "chain fingerprint collision: this append to '" + parent_ds.name +
          "' hashes to " + FingerprintToHex(child_fp) +
          " but its content differs from the registered version '" +
          existing_name + "'");
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(child_fp);
    if (it == entries_.end() || it->second.dataset != existing) {
      continue;  // dropped or replaced while verifying: retry
    }
    it->second.retain = it->second.retain || retain;
    out.dataset = TouchLocked(&it->second, child_fp, pin, /*reused=*/true);
    out.reused = true;
    break;
  }
  if (evicted_self) {
    Unpin(parent.fingerprint);
    return Status::Conflict(StrFormat(
        "dataset version '%s' (%zu marginal bytes) does not fit the "
        "catalog byte budget (%zu bytes)",
        out.dataset.dataset->name.c_str(), marginal_bytes,
        config_.max_bytes));
  }

  // Refresh every cached parent pool for the child (outside the lock;
  // bit-identical to scratch builds). If the child was evicted while we
  // refreshed (tiny budget), forget the freshly inserted pools again.
  out.pools_refreshed = artifacts_.RefreshPoolsFor(
      parent.fingerprint, child_fp, out.dataset.dataset->descriptions,
      row_offset);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.find(child_fp) == entries_.end()) {
      artifacts_.DropPoolsFor(child_fp);
    }
  }
  Unpin(parent.fingerprint);
  return out;
}

Result<std::vector<CatalogEntryInfo>> DatasetCatalog::ListVersions(
    const std::string& spec) {
  SISD_ASSIGN_OR_RETURN(target, FindByNameOrFingerprint(spec, /*pin=*/false));
  std::vector<CatalogEntryInfo> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(target.fingerprint);
    if (it == entries_.end()) return out;  // dropped while resolving
    std::vector<uint64_t> chain = it->second.ancestors;
    chain.push_back(target.fingerprint);
    for (uint64_t fp : chain) {
      auto eit = entries_.find(fp);
      if (eit == entries_.end()) continue;  // ancestor already dropped
      out.push_back(InfoLocked(fp, eit->second));
    }
  }
  for (CatalogEntryInfo& info : out) {
    info.pools = artifacts_.PoolCountFor(info.fingerprint);
  }
  return out;
}

bool DatasetCatalog::IsDescendantOf(uint64_t fingerprint,
                                    uint64_t ancestor) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return false;
  for (uint64_t fp : it->second.ancestors) {
    if (fp == ancestor) return true;
  }
  return false;
}

void DatasetCatalog::Unpin(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return;
  if (it->second.pins > 0) --it->second.pins;
  // Implicitly interned entries live exactly as long as their sessions:
  // the last close frees the dataset (as per-session copies used to),
  // while retained (dataset_load/--preload) entries stay cached.
  if (it->second.pins == 0 && !it->second.retain) {
    EraseEntryLocked(it);
  }
}

Status DatasetCatalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto target = entries_.end();
  size_t name_matches = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.name == name) {
      target = it;
      ++name_matches;
    }
  }
  if (name_matches > 1) {
    return Status::Conflict(StrFormat(
        "catalog name '%s' is ambiguous (%zu datasets share it); drop by "
        "fingerprint instead",
        name.c_str(), name_matches));
  }
  if (target == entries_.end()) {
    // Fall back to the hex fingerprint form.
    Result<uint64_t> fingerprint = FingerprintFromHex(name);
    if (fingerprint.ok()) target = entries_.find(fingerprint.Value());
  }
  if (target == entries_.end()) {
    return Status::NotFound("no catalog dataset named '" + name + "'");
  }
  if (target->second.pins > 0) {
    return Status::Conflict(StrFormat(
        "dataset '%s' is pinned by %llu open session(s); close them first",
        target->second.name.c_str(),
        static_cast<unsigned long long>(target->second.pins)));
  }
  EraseEntryLocked(target);
  return Status::OK();
}

std::shared_ptr<const search::ConditionPool> DatasetCatalog::PoolFor(
    const PinnedDataset& pinned, int num_splits, bool include_exclusions) {
  SISD_CHECK(pinned.dataset != nullptr);
  return artifacts_.PoolFor(pinned.fingerprint, pinned.dataset->descriptions,
                            num_splits, include_exclusions);
}

CatalogEntryInfo DatasetCatalog::InfoLocked(uint64_t fingerprint,
                                            const Entry& entry) {
  CatalogEntryInfo info;
  info.name = entry.name;
  info.fingerprint = fingerprint;
  info.bytes = entry.bytes;
  info.sessions = entry.pins;
  info.rows = entry.dataset->num_rows();
  info.descriptions = entry.dataset->num_descriptions();
  info.targets = entry.dataset->num_targets();
  info.parent_fingerprint = entry.parent_fingerprint;
  info.row_offset = entry.row_offset;
  info.shared_bytes = entry.shared_bytes;
  info.depth = entry.ancestors.size();
  return info;
}

std::vector<CatalogEntryInfo> DatasetCatalog::List() const {
  std::vector<CatalogEntryInfo> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [fingerprint, entry] : entries_) {
      out.push_back(InfoLocked(fingerprint, entry));
    }
  }
  // Pool counts outside the registry lock (the artifact cache has its own).
  for (CatalogEntryInfo& info : out) {
    info.pools = artifacts_.PoolCountFor(info.fingerprint);
  }
  std::sort(out.begin(), out.end(),
            [](const CatalogEntryInfo& a, const CatalogEntryInfo& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.fingerprint < b.fingerprint;
            });
  return out;
}

size_t DatasetCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t DatasetCatalog::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

CatalogStats DatasetCatalog::Stats() const {
  CatalogStats stats;
  stats.interns = interns_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.appends = appends_.load(std::memory_order_relaxed);
  stats.pool_builds = artifacts_.builds();
  stats.pool_hits = artifacts_.hits();
  stats.pool_refreshes = artifacts_.refreshes();
  stats.pool_conditions_reused = artifacts_.conditions_reused();
  stats.pool_conditions_rebuilt = artifacts_.conditions_rebuilt();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fingerprint, entry] : entries_) {
      if (entry.parent_fingerprint == 0) continue;
      ++stats.versions;
      stats.shared_bytes += entry.shared_bytes;
    }
  }
  return stats;
}

}  // namespace sisd::catalog
