/// \file dataset_catalog.hpp
/// \brief Content-addressed registry of immutable shared datasets — the
/// "many analysts, one dataset" substrate of the serve layer.
///
/// The paper's analyst-in-the-loop dialogue (§II-B) is naturally
/// many-dialogues-over-one-dataset: the catalog stores each distinct
/// dataset exactly once, keyed by a stable content fingerprint
/// (catalog/fingerprint.hpp), and hands out
/// `shared_ptr<const data::Dataset>` so every session shares the same
/// immutable instance. Derived search structures (condition pools) are
/// memoized per fingerprint in an embedded `ArtifactCache`, so opening the
/// 64th session on a dataset costs O(model state), not
/// O(dataset + pool build).
///
/// Semantics:
///  - **Content addressing.** `Intern` fingerprints the dataset's snapshot
///    encoding; re-interning identical content returns the existing entry
///    (`reused = true`) and moves its registered name not at all — first
///    registration wins the name. Fingerprint hits are verified by byte
///    equality of the encodings, so a hash collision is a loud `Conflict`,
///    never a silent aliasing of two different datasets.
///  - **Ref counts + lifetime.** Sessions pin the datasets they mine
///    (including while spilled to snapshots, when they hold no
///    `shared_ptr`), so `Drop` can refuse to remove a dataset that a live
///    session would need to restore. Pins are explicit (`pin` flag /
///    `Unpin`), owned by the serve layer. Entries interned with
///    `retain = true` (explicit `dataset_load` / `--preload`) stay
///    registered until dropped; entries interned with `retain = false`
///    (implicit, by a plain `open`) are removed automatically when their
///    last pin releases — a long-running server does not accumulate every
///    dataset ever opened.
///  - **Memory accounting + LRU.** Each entry's size is its snapshot byte
///    length. When `max_bytes` is configured, interning past the budget
///    drops the least-recently-touched *unpinned* entries (logical touch
///    clock, so behaviour is reproducible for a given operation order);
///    interning a dataset that cannot fit even after evictions fails
///    loudly instead of confirming a registration that no longer exists.
///
/// Thread-safe: all public methods may be called concurrently.

#ifndef SISD_CATALOG_DATASET_CATALOG_HPP_
#define SISD_CATALOG_DATASET_CATALOG_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/artifact_cache.hpp"
#include "catalog/fingerprint.hpp"
#include "common/status.hpp"
#include "data/table.hpp"

namespace sisd::catalog {

/// \brief Catalog policy knobs.
struct CatalogConfig {
  /// Total serialized bytes kept before LRU-dropping unpinned entries
  /// (0 = unlimited). Pinned entries never count as droppable.
  size_t max_bytes = 0;
};

/// \brief One catalog entry rendered for stats/listing.
struct CatalogEntryInfo {
  std::string name;
  uint64_t fingerprint = 0;
  size_t bytes = 0;     ///< accounting unit: snapshot-encoded size for
                        ///< roots, marginal appended bytes for versions
  size_t pools = 0;     ///< cached condition pools for this dataset
  uint64_t sessions = 0;  ///< live session pins
  size_t rows = 0;
  size_t descriptions = 0;
  size_t targets = 0;
  /// Version-chain fields (zero for root datasets).
  uint64_t parent_fingerprint = 0;  ///< 0 = root (not a version)
  size_t row_offset = 0;      ///< parent's row count (first appended row)
  size_t shared_bytes = 0;    ///< prefix bytes shared with the ancestry
  size_t depth = 0;           ///< chain length above this entry (root = 0)
};

/// \brief Monotonic catalog traffic counters (process lifetime). A "hit"
/// is any resolution that handed out an already-registered dataset — a
/// dedup'd `Intern` or a successful lookup; a "miss" is a lookup probe
/// that found nothing (`FindByNameOrFingerprint` counts each failed probe,
/// so one spec can record a name miss and then a fingerprint hit). Pool
/// counters mirror the embedded `ArtifactCache`.
struct CatalogStats {
  uint64_t interns = 0;      ///< fresh content registrations
  uint64_t hits = 0;         ///< reused-entry resolutions
  uint64_t misses = 0;       ///< failed lookup probes
  uint64_t pool_builds = 0;  ///< condition pools built from scratch
  uint64_t pool_hits = 0;    ///< condition pools answered from cache
  /// Version-chain gauges and incremental-refresh counters.
  uint64_t appends = 0;         ///< fresh version registrations
  uint64_t versions = 0;        ///< current entries that are versions
  uint64_t shared_bytes = 0;    ///< current prefix bytes shared via chains
  uint64_t pool_refreshes = 0;  ///< pools derived incrementally on append
  uint64_t pool_conditions_reused = 0;   ///< extensions extended in place
  uint64_t pool_conditions_rebuilt = 0;  ///< extensions rebuilt (moved)
};

/// \brief A resolved catalog dataset: the shared instance plus its address.
struct PinnedDataset {
  std::shared_ptr<const data::Dataset> dataset;
  uint64_t fingerprint = 0;
  size_t bytes = 0;
  bool reused = false;  ///< Intern found identical content already present

  /// The (fingerprint, name) pair `dataset_ref` snapshots store.
  DatasetRef ref() const {
    return DatasetRef{fingerprint, dataset ? dataset->name : ""};
  }
};

/// \brief Outcome of `DatasetCatalog::Append`.
struct AppendOutcome {
  /// The child version (or the parent itself for an empty append).
  PinnedDataset dataset;
  uint64_t parent_fingerprint = 0;
  size_t appended_rows = 0;
  size_t row_offset = 0;        ///< parent's row count
  bool reused = false;          ///< identical append already registered
  size_t pools_refreshed = 0;   ///< parent pools refreshed incrementally
};

/// \brief Builds the child dataset from the resolved parent (e.g. via
/// `data::AppendRowsFromCells` / `AppendRowsFromCsvText`). Runs outside
/// the catalog lock; a failure leaves the catalog untouched.
using AppendBuilder =
    std::function<Result<data::Dataset>(const data::Dataset& parent)>;

/// \brief The registry. See the file comment for semantics.
class DatasetCatalog {
 public:
  explicit DatasetCatalog(CatalogConfig config = CatalogConfig());

  DatasetCatalog(const DatasetCatalog&) = delete;
  DatasetCatalog& operator=(const DatasetCatalog&) = delete;

  /// Registers `dataset` (validated, fingerprinted) or dedups against an
  /// existing entry with byte-identical content. `pin` atomically takes
  /// one session pin on the entry (pair with `Unpin`); `retain` marks the
  /// entry as surviving its last unpin (see the lifetime rules above —
  /// a reuse hit upgrades an implicit entry to retained, never the
  /// reverse). The dataset's `name` field is its registered name; content
  /// present under a different name dedups anyway (the content is the
  /// identity, first name wins). Conflict on a fingerprint collision with
  /// different bytes, and when the entry cannot fit `max_bytes`.
  Result<PinnedDataset> Intern(data::Dataset dataset, bool pin, bool retain);

  /// Looks up by registered name; `pin` as in `Intern`. NotFound when no
  /// entry carries `name`; Conflict when several do (distinct content
  /// registered under one name — resolve by fingerprint instead).
  Result<PinnedDataset> FindByName(const std::string& name, bool pin);

  /// Looks up by fingerprint; `pin` as in `Intern`.
  Result<PinnedDataset> FindByFingerprint(uint64_t fingerprint, bool pin);

  /// Looks up by registered name, falling back to interpreting `spec` as a
  /// 16-hex-digit fingerprint when no name matches (the resolution rule of
  /// the `open`/`dataset_drop` protocol verbs).
  Result<PinnedDataset> FindByNameOrFingerprint(const std::string& spec,
                                                bool pin);

  /// Finds the entry whose snapshot encoding equals `encoded` byte for
  /// byte (fingerprint index plus equality verification, so a hash
  /// collision reads as "not present", never as the wrong dataset). Used
  /// by inline-snapshot restores to adopt the shared instance safely.
  Result<PinnedDataset> MatchEncoded(const std::string& encoded, bool pin);

  /// Resolves a snapshot/protocol `dataset_ref`: the fingerprint is the
  /// identity; `ref.name` only improves the NotFound message.
  Result<PinnedDataset> Resolve(const DatasetRef& ref, bool pin);

  /// Registers a row-append *version* of the dataset `parent_spec`
  /// resolves to (name or 16-hex fingerprint). `build_child` receives the
  /// parent and returns the grown dataset (same schema, rows only added —
  /// construct it with the `data/append.hpp` helpers so column chunks are
  /// shared); any builder error is returned verbatim with the catalog
  /// untouched. The child is content-addressed by a chain fingerprint
  /// (parent fingerprint + appended rows, O(new rows)), registered as
  /// `<base>@v<depth+1>`, and accounted at its *marginal* bytes; an
  /// identical re-append dedups onto the existing version (verified by
  /// comparing the stored child's appended rows, `reused = true`). Every
  /// cached condition pool of the parent is refreshed incrementally for
  /// the child before `Append` returns, so a follow-up `PoolFor`/`Rebase`
  /// hits the cache. Appending zero rows is a no-op that returns the
  /// parent entry. Appending to a pinned parent is allowed (the parent is
  /// immutable; the child is a separate entry).
  Result<AppendOutcome> Append(const std::string& parent_spec,
                               const AppendBuilder& build_child, bool pin,
                               bool retain);

  /// The version chain of the entry `spec` resolves to: root first,
  /// ending at the entry itself. Ancestors already dropped from the
  /// registry are skipped (the chain metadata outlives them).
  Result<std::vector<CatalogEntryInfo>> ListVersions(const std::string& spec);

  /// True iff `ancestor` appears in the (strict) ancestor chain of the
  /// entry `fingerprint`; false when either entry is unknown.
  bool IsDescendantOf(uint64_t fingerprint, uint64_t ancestor) const;

  /// Releases one session pin. Dropping the last pin of a non-retained
  /// (implicitly interned) entry removes it — and its cached pools — from
  /// the registry. No-op when the entry is already gone.
  void Unpin(uint64_t fingerprint);

  /// Removes the entry named `name` (or, when `name` parses as 16 hex
  /// digits and no entry carries it as a name, the entry with that
  /// fingerprint) plus its cached pools. Conflict while any session pin is
  /// live — a spilled session's `dataset_ref` snapshot must stay
  /// resolvable. Sessions already holding the `shared_ptr` are unaffected
  /// either way (the data outlives the registry entry).
  Status Drop(const std::string& name);

  /// The memoized condition pool of `pinned`'s dataset for the given
  /// search alphabet (built on first use, shared afterwards).
  std::shared_ptr<const search::ConditionPool> PoolFor(
      const PinnedDataset& pinned, int num_splits, bool include_exclusions);

  /// All entries, sorted by name then fingerprint (deterministic).
  std::vector<CatalogEntryInfo> List() const;

  /// Registered entry count.
  size_t size() const;

  /// Sum of entry byte sizes (the accounting `max_bytes` is checked
  /// against).
  size_t total_bytes() const;

  /// The embedded artifact cache (exposed for tests/diagnostics).
  ArtifactCache& artifacts() { return artifacts_; }

  /// Traffic counters (hit rates for the serve layer's `metrics` verb).
  CatalogStats Stats() const;

 private:
  struct Entry {
    std::shared_ptr<const data::Dataset> dataset;
    std::string name;
    size_t bytes = 0;
    uint64_t pins = 0;
    uint64_t last_touch = 0;
    /// False for implicitly interned entries, which die with their last
    /// pin; true for dataset_load/--preload entries, which persist.
    bool retain = false;
    /// Version-chain metadata (zero / empty for root datasets).
    uint64_t parent_fingerprint = 0;
    size_t row_offset = 0;    ///< parent's row count
    size_t shared_bytes = 0;  ///< sum of ancestor `bytes` (frozen at append)
    std::vector<uint64_t> ancestors;  ///< root-first chain above this entry
  };

  /// Renders entry -> CatalogEntryInfo, minus the pool count, which the
  /// caller fills outside the registry lock (mu_ held).
  static CatalogEntryInfo InfoLocked(uint64_t fingerprint,
                                     const Entry& entry);

  /// Renders entry -> PinnedDataset, bumping touch/pins (mu_ held).
  PinnedDataset TouchLocked(Entry* entry, uint64_t fingerprint, bool pin,
                            bool reused);

  /// Removes one entry and its cached pools (mu_ held).
  void EraseEntryLocked(std::map<uint64_t, Entry>::iterator it);

  /// Drops least-recently-touched unpinned entries until the byte budget
  /// fits (mu_ held). Pools of dropped entries are forgotten too.
  void EnforceBudgetLocked();

  const CatalogConfig config_;
  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;  ///< fingerprint -> entry (ordered)
  size_t total_bytes_ = 0;
  uint64_t touch_clock_ = 0;
  std::atomic<uint64_t> interns_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> appends_{0};
  ArtifactCache artifacts_;
};

}  // namespace sisd::catalog

#endif  // SISD_CATALOG_DATASET_CATALOG_HPP_
