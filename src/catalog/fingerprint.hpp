/// \file fingerprint.hpp
/// \brief Content fingerprints for datasets: a stable 64-bit hash over the
/// serialized dataset, used as the catalog's content address.
///
/// The fingerprint is computed with FNV-1a over the deterministic snapshot
/// encoding of the dataset (`serialize::EncodeDataset(...).Write()`), so it
/// is a pure function of the dataset's content — columns, targets, names —
/// and identical across processes, platforms and sessions. Equal snapshot
/// bytes always fingerprint equal; the converse is only probabilistic
/// (FNV-1a is not collision-free), so the catalog treats the fingerprint
/// as an *index* and verifies byte equality of the encodings before ever
/// deduplicating two datasets onto one instance.

#ifndef SISD_CATALOG_FINGERPRINT_HPP_
#define SISD_CATALOG_FINGERPRINT_HPP_

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "data/table.hpp"

namespace sisd::catalog {

/// \brief FNV-1a 64-bit hash of a byte string.
uint64_t FingerprintBytes(const std::string& bytes);

/// \brief A fingerprinted dataset encoding: the hash plus the size of the
/// serialized form (the catalog's unit of memory accounting).
struct DatasetFingerprint {
  uint64_t value = 0;  ///< FNV-1a over the snapshot encoding
  size_t bytes = 0;    ///< length of the snapshot encoding
};

/// \brief Serializes `dataset` through the snapshot codec and fingerprints
/// the resulting bytes.
DatasetFingerprint FingerprintDataset(const data::Dataset& dataset);

/// \brief Renders a fingerprint as 16 lowercase hex digits (the wire and
/// display form, e.g. "04c11db7deadbeef").
std::string FingerprintToHex(uint64_t fingerprint);

/// \brief Parses the 16-hex-digit wire form back; InvalidArgument on any
/// other shape.
Result<uint64_t> FingerprintFromHex(const std::string& hex);

/// \brief A by-reference pointer to a catalog dataset, as stored in
/// `dataset_ref` snapshots and accepted by the `open` protocol verb. The
/// fingerprint is the identity; the name is advisory (what the dataset was
/// registered as, kept for diagnostics and error messages).
struct DatasetRef {
  uint64_t fingerprint = 0;
  std::string name;
};

}  // namespace sisd::catalog

#endif  // SISD_CATALOG_FINGERPRINT_HPP_
