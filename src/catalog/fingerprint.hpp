/// \file fingerprint.hpp
/// \brief Content fingerprints for datasets: a stable 64-bit hash over the
/// serialized dataset, used as the catalog's content address.
///
/// The fingerprint is computed with FNV-1a over the deterministic snapshot
/// encoding of the dataset (`serialize::EncodeDataset(...).Write()`), so it
/// is a pure function of the dataset's content — columns, targets, names —
/// and identical across processes, platforms and sessions. Equal snapshot
/// bytes always fingerprint equal; the converse is only probabilistic
/// (FNV-1a is not collision-free), so the catalog treats the fingerprint
/// as an *index* and verifies byte equality of the encodings before ever
/// deduplicating two datasets onto one instance.

#ifndef SISD_CATALOG_FINGERPRINT_HPP_
#define SISD_CATALOG_FINGERPRINT_HPP_

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "data/table.hpp"

namespace sisd::catalog {

/// \brief FNV-1a 64-bit hash of a byte string.
uint64_t FingerprintBytes(const std::string& bytes);

/// \brief A fingerprinted dataset encoding: the hash plus the size of the
/// serialized form (the catalog's unit of memory accounting).
struct DatasetFingerprint {
  uint64_t value = 0;  ///< FNV-1a over the snapshot encoding
  size_t bytes = 0;    ///< length of the snapshot encoding
};

/// \brief Serializes `dataset` through the snapshot codec and fingerprints
/// the resulting bytes.
DatasetFingerprint FingerprintDataset(const data::Dataset& dataset);

/// \brief Renders a fingerprint as 16 lowercase hex digits (the wire and
/// display form, e.g. "04c11db7deadbeef").
std::string FingerprintToHex(uint64_t fingerprint);

/// \brief Parses the 16-hex-digit wire form back; InvalidArgument on any
/// other shape.
Result<uint64_t> FingerprintFromHex(const std::string& hex);

/// \brief Chain fingerprint of a row-append dataset version: FNV-1a
/// seeded with the parent's hex fingerprint, streamed over the typed
/// content of rows `[from_row, n)` — numeric description values and
/// targets by their double bits, categorical levels by label text (so the
/// identity is independent of code numbering). O(appended rows); no
/// serialized form is materialized, which keeps `Append` cost independent
/// of the prefix size.
uint64_t ChainFingerprintAppendedRows(uint64_t parent_fingerprint,
                                      const data::Dataset& child,
                                      size_t from_row);

/// \brief True iff `a` and `b` share a schema and rows `[from_row, n)`
/// are identical — bitwise for doubles, label text for categorical
/// levels. The version-dedup analogue of the catalog's byte verification
/// (a chain-fingerprint hit is only an index; this is the proof).
bool AppendedRowsEqual(const data::Dataset& a, const data::Dataset& b,
                       size_t from_row);

/// \brief Approximate in-memory size of rows `[from_row, n)`: the
/// marginal bytes a version adds on top of its parent (the catalog's
/// accounting unit for versions, whose prefix storage is shared).
size_t AppendedRowsBytes(const data::Dataset& child, size_t from_row);

/// \brief A by-reference pointer to a catalog dataset, as stored in
/// `dataset_ref` snapshots and accepted by the `open` protocol verb. The
/// fingerprint is the identity; the name is advisory (what the dataset was
/// registered as, kept for diagnostics and error messages).
struct DatasetRef {
  uint64_t fingerprint = 0;
  std::string name;
};

}  // namespace sisd::catalog

#endif  // SISD_CATALOG_FINGERPRINT_HPP_
