#include "catalog/fingerprint.hpp"

#include <bit>

#include "serialize/snapshot.hpp"

namespace sisd::catalog {

namespace {

/// Incremental FNV-1a 64 (same constants as `FingerprintBytes`).
struct Fnv64 {
  uint64_t h = 14695981039346656037ull;

  void Bytes(const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      h ^= uint64_t(p[i]);
      h *= 1099511628211ull;
    }
  }
  void U64(uint64_t v) {
    // Explicit little-endian byte order so the hash is platform-stable.
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = (unsigned char)(v >> (8 * i));
    Bytes(bytes, 8);
  }
  void Double(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
};

}  // namespace

uint64_t FingerprintBytes(const std::string& bytes) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= uint64_t(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

DatasetFingerprint FingerprintDataset(const data::Dataset& dataset) {
  const std::string encoded = serialize::EncodeDataset(dataset).Write();
  DatasetFingerprint out;
  out.value = FingerprintBytes(encoded);
  out.bytes = encoded.size();
  return out;
}

uint64_t ChainFingerprintAppendedRows(uint64_t parent_fingerprint,
                                      const data::Dataset& child,
                                      size_t from_row) {
  Fnv64 fnv;
  fnv.Str(FingerprintToHex(parent_fingerprint));
  const size_t n = child.num_rows();
  const size_t num_desc = child.num_descriptions();
  const size_t dy = child.num_targets();
  fnv.U64(from_row);
  fnv.U64(n);
  fnv.U64(num_desc);
  fnv.U64(dy);
  for (size_t i = from_row; i < n; ++i) {
    for (size_t j = 0; j < num_desc; ++j) {
      const data::Column& col = child.descriptions.column(j);
      if (data::IsOrderable(col.kind())) {
        fnv.Double(col.NumericValue(i));
      } else {
        fnv.Str(col.Label(col.Code(i)));
      }
    }
    for (size_t t = 0; t < dy; ++t) {
      fnv.Double(child.targets(i, t));
    }
  }
  return fnv.h;
}

bool AppendedRowsEqual(const data::Dataset& a, const data::Dataset& b,
                       size_t from_row) {
  if (a.num_rows() != b.num_rows() ||
      a.num_descriptions() != b.num_descriptions() ||
      a.num_targets() != b.num_targets() ||
      a.target_names != b.target_names) {
    return false;
  }
  const size_t n = a.num_rows();
  for (size_t j = 0; j < a.num_descriptions(); ++j) {
    const data::Column& ca = a.descriptions.column(j);
    const data::Column& cb = b.descriptions.column(j);
    if (ca.name() != cb.name() || ca.kind() != cb.kind()) return false;
  }
  for (size_t i = from_row; i < n; ++i) {
    for (size_t j = 0; j < a.num_descriptions(); ++j) {
      const data::Column& ca = a.descriptions.column(j);
      const data::Column& cb = b.descriptions.column(j);
      if (data::IsOrderable(ca.kind())) {
        if (std::bit_cast<uint64_t>(ca.NumericValue(i)) !=
            std::bit_cast<uint64_t>(cb.NumericValue(i))) {
          return false;
        }
      } else if (ca.Label(ca.Code(i)) != cb.Label(cb.Code(i))) {
        return false;
      }
    }
    for (size_t t = 0; t < a.num_targets(); ++t) {
      if (std::bit_cast<uint64_t>(a.targets(i, t)) !=
          std::bit_cast<uint64_t>(b.targets(i, t))) {
        return false;
      }
    }
  }
  return true;
}

size_t AppendedRowsBytes(const data::Dataset& child, size_t from_row) {
  const size_t rows = child.num_rows() - from_row;
  size_t per_row = child.num_targets() * sizeof(double);
  for (size_t j = 0; j < child.num_descriptions(); ++j) {
    const data::Column& col = child.descriptions.column(j);
    per_row += data::IsOrderable(col.kind()) ? sizeof(double)
                                             : sizeof(int32_t);
  }
  return rows * per_row;
}

std::string FingerprintToHex(uint64_t fingerprint) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[size_t(i)] = kDigits[fingerprint & 0xf];
    fingerprint >>= 4;
  }
  return out;
}

Result<uint64_t> FingerprintFromHex(const std::string& hex) {
  if (hex.size() != 16) {
    return Status::InvalidArgument(
        "fingerprint must be 16 hex digits, got '" + hex + "'");
  }
  uint64_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return Status::InvalidArgument(
          "fingerprint must be 16 hex digits, got '" + hex + "'");
    }
    value = (value << 4) | uint64_t(digit);
  }
  return value;
}

}  // namespace sisd::catalog
