#include "catalog/fingerprint.hpp"

#include "serialize/snapshot.hpp"

namespace sisd::catalog {

uint64_t FingerprintBytes(const std::string& bytes) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= uint64_t(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

DatasetFingerprint FingerprintDataset(const data::Dataset& dataset) {
  const std::string encoded = serialize::EncodeDataset(dataset).Write();
  DatasetFingerprint out;
  out.value = FingerprintBytes(encoded);
  out.bytes = encoded.size();
  return out;
}

std::string FingerprintToHex(uint64_t fingerprint) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[size_t(i)] = kDigits[fingerprint & 0xf];
    fingerprint >>= 4;
  }
  return out;
}

Result<uint64_t> FingerprintFromHex(const std::string& hex) {
  if (hex.size() != 16) {
    return Status::InvalidArgument(
        "fingerprint must be 16 hex digits, got '" + hex + "'");
  }
  uint64_t value = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return Status::InvalidArgument(
          "fingerprint must be 16 hex digits, got '" + hex + "'");
    }
    value = (value << 4) | uint64_t(digit);
  }
  return value;
}

}  // namespace sisd::catalog
