#include "catalog/artifact_cache.hpp"

#include <utility>

namespace sisd::catalog {

std::shared_ptr<const search::ConditionPool> ArtifactCache::PoolFor(
    uint64_t fingerprint, const data::DataTable& descriptions,
    int num_splits, bool include_exclusions) {
  const Key key{fingerprint, num_splits, include_exclusions};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pools_.find(key);
    if (it != pools_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Miss: build outside the lock (pure function of the inputs, so two
  // racing builders produce interchangeable pools; first insert wins).
  builds_.fetch_add(1, std::memory_order_relaxed);
  auto built = std::make_shared<const search::ConditionPool>(
      search::ConditionPool::Build(descriptions, num_splits,
                                   include_exclusions));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = pools_.emplace(key, std::move(built));
  return it->second;
}

size_t ArtifactCache::PoolCountFor(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [key, pool] : pools_) {
    if (std::get<0>(key) == fingerprint) ++count;
  }
  return count;
}

size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pools_.size();
}

void ArtifactCache::DropPoolsFor(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pools_.begin(); it != pools_.end();) {
    if (std::get<0>(it->first) == fingerprint) {
      it = pools_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sisd::catalog
