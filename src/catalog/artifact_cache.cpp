#include "catalog/artifact_cache.hpp"

#include <utility>
#include <vector>

namespace sisd::catalog {

std::shared_ptr<const search::ConditionPool> ArtifactCache::PoolFor(
    uint64_t fingerprint, const data::DataTable& descriptions,
    int num_splits, bool include_exclusions) {
  const Key key{fingerprint, num_splits, include_exclusions};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pools_.find(key);
    if (it != pools_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Miss: build outside the lock (pure function of the inputs, so two
  // racing builders produce interchangeable pools; first insert wins).
  builds_.fetch_add(1, std::memory_order_relaxed);
  auto built = std::make_shared<const search::ConditionPool>(
      search::ConditionPool::Build(descriptions, num_splits,
                                   include_exclusions));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = pools_.emplace(key, std::move(built));
  return it->second;
}

size_t ArtifactCache::RefreshPoolsFor(uint64_t parent_fingerprint,
                                      uint64_t child_fingerprint,
                                      const data::DataTable& child_descriptions,
                                      size_t parent_rows) {
  // Snapshot the parent's pools under the lock; build incrementally
  // outside it (same no-stall rationale as PoolFor's miss path).
  std::vector<std::pair<Key, std::shared_ptr<const search::ConditionPool>>>
      parents;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, pool] : pools_) {
      if (std::get<0>(key) != parent_fingerprint) continue;
      const Key child_key{child_fingerprint, std::get<1>(key),
                          std::get<2>(key)};
      if (pools_.count(child_key) > 0) continue;  // already refreshed
      parents.emplace_back(key, pool);
    }
  }
  size_t refreshed = 0;
  for (const auto& [key, parent_pool] : parents) {
    search::IncrementalPoolStats stats;
    auto built = std::make_shared<const search::ConditionPool>(
        search::ConditionPool::BuildIncremental(
            child_descriptions, *parent_pool, parent_rows,
            std::get<1>(key), std::get<2>(key), &stats));
    const Key child_key{child_fingerprint, std::get<1>(key),
                        std::get<2>(key)};
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = pools_.emplace(child_key, std::move(built));
    if (inserted) {
      ++refreshed;
      refreshes_.fetch_add(1, std::memory_order_relaxed);
      conditions_reused_.fetch_add(stats.reused, std::memory_order_relaxed);
      conditions_rebuilt_.fetch_add(stats.rebuilt,
                                    std::memory_order_relaxed);
    }
  }
  return refreshed;
}

size_t ArtifactCache::PoolCountFor(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [key, pool] : pools_) {
    if (std::get<0>(key) == fingerprint) ++count;
  }
  return count;
}

size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pools_.size();
}

void ArtifactCache::DropPoolsFor(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pools_.begin(); it != pools_.end();) {
    if (std::get<0>(it->first) == fingerprint) {
      it = pools_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sisd::catalog
