#include "core/export.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "data/csv.hpp"

namespace sisd::core {

namespace {

std::string DirectionToString(const linalg::Vector& w,
                              const std::vector<std::string>& target_names) {
  std::vector<std::string> parts;
  for (size_t t = 0; t < w.size(); ++t) {
    if (std::fabs(w[t]) > 1e-9) {
      parts.push_back(StrFormat("%s:%+.4f",
                                t < target_names.size()
                                    ? target_names[t].c_str()
                                    : StrFormat("y%zu", t).c_str(),
                                w[t]));
    }
  }
  return JoinStrings(parts, " ");
}

}  // namespace

data::DataTable IterationSummaryTable(
    const std::vector<IterationResult>& history,
    const data::DataTable& descriptions,
    const std::vector<std::string>& target_names) {
  std::vector<double> iteration, coverage, ic, dl, si;
  std::vector<double> spread_var, spread_ic, spread_si;
  std::vector<std::string> intention, direction;
  for (size_t k = 0; k < history.size(); ++k) {
    const IterationResult& it = history[k];
    iteration.push_back(double(k + 1));
    intention.push_back(
        it.location.pattern.subgroup.intention.ToString(descriptions));
    coverage.push_back(double(it.location.pattern.subgroup.Coverage()));
    ic.push_back(it.location.score.ic);
    dl.push_back(it.location.score.dl);
    si.push_back(it.location.score.si);
    if (it.spread.has_value()) {
      spread_var.push_back(it.spread->pattern.variance);
      spread_ic.push_back(it.spread->score.ic);
      spread_si.push_back(it.spread->score.si);
      direction.push_back(
          DirectionToString(it.spread->pattern.direction, target_names));
    } else {
      spread_var.push_back(0.0);
      spread_ic.push_back(0.0);
      spread_si.push_back(0.0);
      direction.push_back("");
    }
  }
  data::DataTable table;
  table.AddColumn(data::Column::Numeric("iteration", iteration)).CheckOK();
  table.AddColumn(
           data::Column::CategoricalFromStrings("intention", intention))
      .CheckOK();
  table.AddColumn(data::Column::Numeric("coverage", coverage)).CheckOK();
  table.AddColumn(data::Column::Numeric("location_ic", ic)).CheckOK();
  table.AddColumn(data::Column::Numeric("location_dl", dl)).CheckOK();
  table.AddColumn(data::Column::Numeric("location_si", si)).CheckOK();
  table.AddColumn(data::Column::Numeric("spread_variance", spread_var))
      .CheckOK();
  table.AddColumn(data::Column::Numeric("spread_ic", spread_ic)).CheckOK();
  table.AddColumn(data::Column::Numeric("spread_si", spread_si)).CheckOK();
  table.AddColumn(
           data::Column::CategoricalFromStrings("spread_direction",
                                                direction))
      .CheckOK();
  return table;
}

data::DataTable RankedListTable(const IterationResult& iteration,
                                const data::DataTable& descriptions) {
  std::vector<double> rank, coverage, ic, dl, si;
  std::vector<std::string> intention;
  for (size_t r = 0; r < iteration.ranked.size(); ++r) {
    const ScoredLocationPattern& entry = iteration.ranked[r];
    rank.push_back(double(r + 1));
    intention.push_back(
        entry.pattern.subgroup.intention.ToString(descriptions));
    coverage.push_back(double(entry.pattern.subgroup.Coverage()));
    ic.push_back(entry.score.ic);
    dl.push_back(entry.score.dl);
    si.push_back(entry.score.si);
  }
  data::DataTable table;
  table.AddColumn(data::Column::Numeric("rank", rank)).CheckOK();
  table.AddColumn(
           data::Column::CategoricalFromStrings("intention", intention))
      .CheckOK();
  table.AddColumn(data::Column::Numeric("coverage", coverage)).CheckOK();
  table.AddColumn(data::Column::Numeric("ic", ic)).CheckOK();
  table.AddColumn(data::Column::Numeric("dl", dl)).CheckOK();
  table.AddColumn(data::Column::Numeric("si", si)).CheckOK();
  return table;
}

Status ExportHistoryCsv(const IterativeMiner& miner,
                        const std::string& path) {
  return ExportHistoryCsv(miner.session(), path);
}

Status ExportHistoryCsv(const MiningSession& session,
                        const std::string& path) {
  const data::DataTable table = IterationSummaryTable(
      session.history(), session.dataset().descriptions,
      session.dataset().target_names);
  return data::WriteCsvFile(table, path);
}

}  // namespace sisd::core
