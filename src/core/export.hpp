/// \file export.hpp
/// \brief Exporting mining results to tabular form / CSV for external
/// analysis and plotting (the paper's figures were produced by plotting
/// exactly these series).

#ifndef SISD_CORE_EXPORT_HPP_
#define SISD_CORE_EXPORT_HPP_

#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/miner.hpp"
#include "data/table.hpp"

namespace sisd::core {

/// \brief Flattens a sequence of iteration results into a table with one
/// row per iteration: intention text, coverage, location IC/DL/SI, and
/// (when present) spread variance/IC/SI plus the direction rendered as
/// text. Ready for `data::WriteCsvFile`.
data::DataTable IterationSummaryTable(
    const std::vector<IterationResult>& history,
    const data::DataTable& descriptions,
    const std::vector<std::string>& target_names);

/// \brief Flattens one iteration's full ranked list (top-k subgroups by
/// SI) into a table: rank, intention, coverage, IC, DL, SI.
data::DataTable RankedListTable(const IterationResult& iteration,
                                const data::DataTable& descriptions);

/// \brief Writes the miner's history (one row per completed iteration) to
/// a CSV file.
Status ExportHistoryCsv(const IterativeMiner& miner, const std::string& path);

/// \brief Session overload of `ExportHistoryCsv`.
Status ExportHistoryCsv(const MiningSession& session,
                        const std::string& path);

}  // namespace sisd::core

#endif  // SISD_CORE_EXPORT_HPP_
