#include "core/session_io.hpp"

#include "serialize/snapshot.hpp"

namespace sisd::core {

using serialize::JsonValue;

namespace {

Result<double> GetDoubleField(const JsonValue& json, const char* key) {
  SISD_ASSIGN_OR_RETURN(field, json.Get(key));
  return field->GetDouble();
}

Result<int64_t> GetIntField(const JsonValue& json, const char* key) {
  SISD_ASSIGN_OR_RETURN(field, json.Get(key));
  return field->GetInt();
}

Result<size_t> GetSizeField(const JsonValue& json, const char* key) {
  SISD_ASSIGN_OR_RETURN(field, json.Get(key));
  return field->GetSize();
}

Result<bool> GetBoolField(const JsonValue& json, const char* key) {
  SISD_ASSIGN_OR_RETURN(field, json.Get(key));
  return field->GetBool();
}

JsonValue EncodeSearchConfig(const search::SearchConfig& config) {
  JsonValue out = JsonValue::Object();
  out.Set("beam_width", JsonValue::Int(config.beam_width));
  out.Set("max_depth", JsonValue::Int(config.max_depth));
  out.Set("num_split_points", JsonValue::Int(config.num_split_points));
  out.Set("include_exclusions", JsonValue::Bool(config.include_exclusions));
  out.Set("top_k", JsonValue::Int(int64_t(config.top_k)));
  out.Set("min_coverage", JsonValue::Int(int64_t(config.min_coverage)));
  out.Set("max_coverage_fraction",
          JsonValue::Double(config.max_coverage_fraction));
  out.Set("time_budget_seconds",
          JsonValue::Double(config.time_budget_seconds));
  out.Set("num_threads", JsonValue::Int(config.num_threads));
  return out;
}

Result<search::SearchConfig> DecodeSearchConfig(const JsonValue& json) {
  search::SearchConfig out;
  SISD_ASSIGN_OR_RETURN(beam_width, GetIntField(json, "beam_width"));
  out.beam_width = int(beam_width);
  SISD_ASSIGN_OR_RETURN(max_depth, GetIntField(json, "max_depth"));
  out.max_depth = int(max_depth);
  SISD_ASSIGN_OR_RETURN(splits, GetIntField(json, "num_split_points"));
  out.num_split_points = int(splits);
  // Additive schema field. Snapshots written before the flag existed came
  // from builds whose pool unconditionally emitted != exclusions, so an
  // absent field must decode to `true` — otherwise a restored session
  // would mine over a smaller alphabet than the session that saved it,
  // breaking the byte-identical-resume guarantee. New snapshots always
  // carry the field (false by default: the paper's Cortana alphabet).
  out.include_exclusions = true;
  if (const JsonValue* exclusions = json.Find("include_exclusions")) {
    SISD_ASSIGN_OR_RETURN(v, exclusions->GetBool());
    out.include_exclusions = v;
  }
  SISD_ASSIGN_OR_RETURN(top_k, GetSizeField(json, "top_k"));
  out.top_k = top_k;
  SISD_ASSIGN_OR_RETURN(min_coverage, GetSizeField(json, "min_coverage"));
  out.min_coverage = min_coverage;
  SISD_ASSIGN_OR_RETURN(max_fraction,
                        GetDoubleField(json, "max_coverage_fraction"));
  out.max_coverage_fraction = max_fraction;
  SISD_ASSIGN_OR_RETURN(budget, GetDoubleField(json, "time_budget_seconds"));
  out.time_budget_seconds = budget;
  SISD_ASSIGN_OR_RETURN(threads, GetIntField(json, "num_threads"));
  out.num_threads = int(threads);
  return out;
}

JsonValue EncodeOptimizerConfig(
    const optimize::SphereOptimizerConfig& config) {
  JsonValue out = JsonValue::Object();
  out.Set("max_iterations", JsonValue::Int(config.max_iterations));
  out.Set("max_backtracks", JsonValue::Int(config.max_backtracks));
  out.Set("gradient_tolerance",
          JsonValue::Double(config.gradient_tolerance));
  out.Set("armijo_c1", JsonValue::Double(config.armijo_c1));
  out.Set("initial_step", JsonValue::Double(config.initial_step));
  out.Set("num_random_starts", JsonValue::Int(config.num_random_starts));
  // uint64 seeds round-trip through the int64 bit pattern.
  out.Set("seed", JsonValue::Int(int64_t(config.seed)));
  return out;
}

Result<optimize::SphereOptimizerConfig> DecodeOptimizerConfig(
    const JsonValue& json) {
  optimize::SphereOptimizerConfig out;
  SISD_ASSIGN_OR_RETURN(max_iterations, GetIntField(json, "max_iterations"));
  out.max_iterations = int(max_iterations);
  SISD_ASSIGN_OR_RETURN(max_backtracks, GetIntField(json, "max_backtracks"));
  out.max_backtracks = int(max_backtracks);
  SISD_ASSIGN_OR_RETURN(tolerance,
                        GetDoubleField(json, "gradient_tolerance"));
  out.gradient_tolerance = tolerance;
  SISD_ASSIGN_OR_RETURN(armijo, GetDoubleField(json, "armijo_c1"));
  out.armijo_c1 = armijo;
  SISD_ASSIGN_OR_RETURN(step, GetDoubleField(json, "initial_step"));
  out.initial_step = step;
  SISD_ASSIGN_OR_RETURN(starts, GetIntField(json, "num_random_starts"));
  out.num_random_starts = int(starts);
  SISD_ASSIGN_OR_RETURN(seed, GetIntField(json, "seed"));
  out.seed = uint64_t(seed);
  return out;
}

JsonValue EncodeLocationScore(const si::LocationScore& score) {
  JsonValue out = JsonValue::Object();
  out.Set("ic", JsonValue::Double(score.ic));
  out.Set("dl", JsonValue::Double(score.dl));
  out.Set("si", JsonValue::Double(score.si));
  return out;
}

Result<si::LocationScore> DecodeLocationScore(const JsonValue& json) {
  si::LocationScore out;
  SISD_ASSIGN_OR_RETURN(ic, GetDoubleField(json, "ic"));
  out.ic = ic;
  SISD_ASSIGN_OR_RETURN(dl, GetDoubleField(json, "dl"));
  out.dl = dl;
  SISD_ASSIGN_OR_RETURN(si_value, GetDoubleField(json, "si"));
  out.si = si_value;
  return out;
}

JsonValue EncodeSpreadScore(const si::SpreadScore& score) {
  JsonValue out = JsonValue::Object();
  out.Set("ic", JsonValue::Double(score.ic));
  out.Set("dl", JsonValue::Double(score.dl));
  out.Set("si", JsonValue::Double(score.si));
  JsonValue approx = JsonValue::Object();
  approx.Set("alpha", JsonValue::Double(score.approx.alpha));
  approx.Set("beta", JsonValue::Double(score.approx.beta));
  approx.Set("m", JsonValue::Double(score.approx.m));
  approx.Set("a1", JsonValue::Double(score.approx.a1));
  approx.Set("a2", JsonValue::Double(score.approx.a2));
  approx.Set("a3", JsonValue::Double(score.approx.a3));
  out.Set("approx", std::move(approx));
  return out;
}

Result<si::SpreadScore> DecodeSpreadScore(const JsonValue& json) {
  si::SpreadScore out;
  SISD_ASSIGN_OR_RETURN(ic, GetDoubleField(json, "ic"));
  out.ic = ic;
  SISD_ASSIGN_OR_RETURN(dl, GetDoubleField(json, "dl"));
  out.dl = dl;
  SISD_ASSIGN_OR_RETURN(si_value, GetDoubleField(json, "si"));
  out.si = si_value;
  SISD_ASSIGN_OR_RETURN(approx, json.Get("approx"));
  SISD_ASSIGN_OR_RETURN(alpha, GetDoubleField(*approx, "alpha"));
  out.approx.alpha = alpha;
  SISD_ASSIGN_OR_RETURN(beta, GetDoubleField(*approx, "beta"));
  out.approx.beta = beta;
  SISD_ASSIGN_OR_RETURN(m, GetDoubleField(*approx, "m"));
  out.approx.m = m;
  SISD_ASSIGN_OR_RETURN(a1, GetDoubleField(*approx, "a1"));
  out.approx.a1 = a1;
  SISD_ASSIGN_OR_RETURN(a2, GetDoubleField(*approx, "a2"));
  out.approx.a2 = a2;
  SISD_ASSIGN_OR_RETURN(a3, GetDoubleField(*approx, "a3"));
  out.approx.a3 = a3;
  return out;
}

JsonValue EncodeSubgroup(const pattern::Subgroup& subgroup) {
  JsonValue out = JsonValue::Object();
  out.Set("intention", serialize::EncodeIntention(subgroup.intention));
  out.Set("extension", serialize::EncodeExtension(subgroup.extension));
  return out;
}

Result<pattern::Subgroup> DecodeSubgroup(const JsonValue& json) {
  pattern::Subgroup out;
  SISD_ASSIGN_OR_RETURN(intention_json, json.Get("intention"));
  SISD_ASSIGN_OR_RETURN(intention,
                        serialize::DecodeIntention(*intention_json));
  out.intention = std::move(intention);
  SISD_ASSIGN_OR_RETURN(extension_json, json.Get("extension"));
  SISD_ASSIGN_OR_RETURN(extension,
                        serialize::DecodeExtension(*extension_json));
  out.extension = std::move(extension);
  return out;
}

}  // namespace

JsonValue EncodeMinerConfig(const MinerConfig& config) {
  JsonValue out = JsonValue::Object();
  out.Set("search", EncodeSearchConfig(config.search));
  JsonValue dl = JsonValue::Object();
  dl.Set("gamma", JsonValue::Double(config.dl.gamma));
  dl.Set("eta", JsonValue::Double(config.dl.eta));
  out.Set("dl", std::move(dl));
  out.Set("mix", JsonValue::Str(config.mix == PatternMix::kLocationOnly
                                    ? "location_only"
                                    : "location_and_spread"));
  out.Set("spread_sparsity", JsonValue::Int(config.spread_sparsity));
  out.Set("spread_optimizer",
          EncodeOptimizerConfig(config.spread_optimizer));
  out.Set("prior_mean", config.prior_mean.has_value()
                            ? serialize::EncodeVector(*config.prior_mean)
                            : JsonValue::Null());
  out.Set("prior_covariance",
          config.prior_covariance.has_value()
              ? serialize::EncodeMatrix(*config.prior_covariance)
              : JsonValue::Null());
  out.Set("prior_ridge", JsonValue::Double(config.prior_ridge));
  out.Set("use_optimal_search", JsonValue::Bool(config.use_optimal_search));
  JsonValue list_gain = JsonValue::Object();
  list_gain.Set("alpha", JsonValue::Double(config.list_gain.alpha));
  list_gain.Set("beta", JsonValue::Double(config.list_gain.beta));
  list_gain.Set("variance_floor",
                JsonValue::Double(config.list_gain.variance_floor));
  list_gain.Set("normalized", JsonValue::Bool(config.list_gain.normalized));
  out.Set("list_gain", std::move(list_gain));
  return out;
}

Result<MinerConfig> DecodeMinerConfig(const JsonValue& json) {
  MinerConfig out;
  SISD_ASSIGN_OR_RETURN(search_json, json.Get("search"));
  SISD_ASSIGN_OR_RETURN(search_config, DecodeSearchConfig(*search_json));
  out.search = search_config;
  SISD_ASSIGN_OR_RETURN(dl_json, json.Get("dl"));
  SISD_ASSIGN_OR_RETURN(gamma, GetDoubleField(*dl_json, "gamma"));
  out.dl.gamma = gamma;
  SISD_ASSIGN_OR_RETURN(eta, GetDoubleField(*dl_json, "eta"));
  out.dl.eta = eta;
  SISD_ASSIGN_OR_RETURN(mix_json, json.Get("mix"));
  SISD_ASSIGN_OR_RETURN(mix, mix_json->GetString());
  if (mix == "location_only") {
    out.mix = PatternMix::kLocationOnly;
  } else if (mix == "location_and_spread") {
    out.mix = PatternMix::kLocationAndSpread;
  } else {
    return Status::InvalidArgument("unknown pattern mix '" + mix + "'");
  }
  SISD_ASSIGN_OR_RETURN(sparsity, GetIntField(json, "spread_sparsity"));
  out.spread_sparsity = int(sparsity);
  SISD_ASSIGN_OR_RETURN(optimizer_json, json.Get("spread_optimizer"));
  SISD_ASSIGN_OR_RETURN(optimizer, DecodeOptimizerConfig(*optimizer_json));
  out.spread_optimizer = optimizer;
  SISD_ASSIGN_OR_RETURN(prior_mean_json, json.Get("prior_mean"));
  if (!prior_mean_json->is_null()) {
    SISD_ASSIGN_OR_RETURN(prior_mean,
                          serialize::DecodeVector(*prior_mean_json));
    out.prior_mean = std::move(prior_mean);
  }
  SISD_ASSIGN_OR_RETURN(prior_cov_json, json.Get("prior_covariance"));
  if (!prior_cov_json->is_null()) {
    SISD_ASSIGN_OR_RETURN(prior_cov,
                          serialize::DecodeMatrix(*prior_cov_json));
    out.prior_covariance = std::move(prior_cov);
  }
  SISD_ASSIGN_OR_RETURN(ridge, GetDoubleField(json, "prior_ridge"));
  out.prior_ridge = ridge;
  // Additive field (optimal-search PR): absent in older snapshots, which
  // must keep restoring — default off, same as MinerConfig.
  out.use_optimal_search = false;
  if (const JsonValue* optimal = json.Find("use_optimal_search")) {
    SISD_ASSIGN_OR_RETURN(v, optimal->GetBool());
    out.use_optimal_search = v;
  }
  // Additive field (subgroup-list PR): absent in older snapshots, which
  // restore with the default gain knobs — matching MinerConfig.
  if (const JsonValue* list_gain = json.Find("list_gain")) {
    SISD_ASSIGN_OR_RETURN(alpha, GetDoubleField(*list_gain, "alpha"));
    out.list_gain.alpha = alpha;
    SISD_ASSIGN_OR_RETURN(beta, GetDoubleField(*list_gain, "beta"));
    out.list_gain.beta = beta;
    SISD_ASSIGN_OR_RETURN(floor,
                          GetDoubleField(*list_gain, "variance_floor"));
    out.list_gain.variance_floor = floor;
    SISD_ASSIGN_OR_RETURN(normalized,
                          GetBoolField(*list_gain, "normalized"));
    out.list_gain.normalized = normalized;
  }
  return out;
}

JsonValue EncodeDatasetRef(const catalog::DatasetRef& ref) {
  JsonValue out = JsonValue::Object();
  out.Set("fingerprint",
          JsonValue::Str(catalog::FingerprintToHex(ref.fingerprint)));
  out.Set("name", JsonValue::Str(ref.name));
  return out;
}

Result<catalog::DatasetRef> DecodeDatasetRef(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("dataset_ref must be an object");
  }
  catalog::DatasetRef out;
  SISD_ASSIGN_OR_RETURN(fingerprint_json, json.Get("fingerprint"));
  SISD_ASSIGN_OR_RETURN(hex, fingerprint_json->GetString());
  SISD_ASSIGN_OR_RETURN(fingerprint, catalog::FingerprintFromHex(hex));
  out.fingerprint = fingerprint;
  SISD_ASSIGN_OR_RETURN(name_json, json.Get("name"));
  SISD_ASSIGN_OR_RETURN(name, name_json->GetString());
  out.name = std::move(name);
  return out;
}

JsonValue EncodeVersionLink(const SessionVersionLink& link) {
  JsonValue out = JsonValue::Object();
  out.Set("fingerprint",
          JsonValue::Str(catalog::FingerprintToHex(link.fingerprint)));
  out.Set("name", JsonValue::Str(link.name));
  out.Set("rows", JsonValue::Int(static_cast<int64_t>(link.rows)));
  return out;
}

Result<SessionVersionLink> DecodeVersionLink(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("version_chain entry must be an object");
  }
  SessionVersionLink out;
  SISD_ASSIGN_OR_RETURN(fingerprint_json, json.Get("fingerprint"));
  SISD_ASSIGN_OR_RETURN(hex, fingerprint_json->GetString());
  SISD_ASSIGN_OR_RETURN(fingerprint, catalog::FingerprintFromHex(hex));
  out.fingerprint = fingerprint;
  SISD_ASSIGN_OR_RETURN(name_json, json.Get("name"));
  SISD_ASSIGN_OR_RETURN(name, name_json->GetString());
  out.name = std::move(name);
  SISD_ASSIGN_OR_RETURN(rows_json, json.Get("rows"));
  SISD_ASSIGN_OR_RETURN(rows, rows_json->GetSize());
  out.rows = rows;
  return out;
}

JsonValue EncodeScoredLocation(const ScoredLocationPattern& p) {
  JsonValue out = JsonValue::Object();
  out.Set("subgroup", EncodeSubgroup(p.pattern.subgroup));
  out.Set("mean", serialize::EncodeVector(p.pattern.mean));
  out.Set("score", EncodeLocationScore(p.score));
  return out;
}

Result<ScoredLocationPattern> DecodeScoredLocation(const JsonValue& json) {
  ScoredLocationPattern out;
  SISD_ASSIGN_OR_RETURN(subgroup_json, json.Get("subgroup"));
  SISD_ASSIGN_OR_RETURN(subgroup, DecodeSubgroup(*subgroup_json));
  out.pattern.subgroup = std::move(subgroup);
  SISD_ASSIGN_OR_RETURN(mean_json, json.Get("mean"));
  SISD_ASSIGN_OR_RETURN(mean, serialize::DecodeVector(*mean_json));
  out.pattern.mean = std::move(mean);
  SISD_ASSIGN_OR_RETURN(score_json, json.Get("score"));
  SISD_ASSIGN_OR_RETURN(score, DecodeLocationScore(*score_json));
  out.score = score;
  return out;
}

JsonValue EncodeScoredSpread(const ScoredSpreadPattern& p) {
  JsonValue out = JsonValue::Object();
  out.Set("subgroup", EncodeSubgroup(p.pattern.subgroup));
  out.Set("direction", serialize::EncodeVector(p.pattern.direction));
  out.Set("variance", JsonValue::Double(p.pattern.variance));
  out.Set("score", EncodeSpreadScore(p.score));
  return out;
}

Result<ScoredSpreadPattern> DecodeScoredSpread(const JsonValue& json) {
  ScoredSpreadPattern out;
  SISD_ASSIGN_OR_RETURN(subgroup_json, json.Get("subgroup"));
  SISD_ASSIGN_OR_RETURN(subgroup, DecodeSubgroup(*subgroup_json));
  out.pattern.subgroup = std::move(subgroup);
  SISD_ASSIGN_OR_RETURN(direction_json, json.Get("direction"));
  SISD_ASSIGN_OR_RETURN(direction,
                        serialize::DecodeVector(*direction_json));
  out.pattern.direction = std::move(direction);
  SISD_ASSIGN_OR_RETURN(variance, GetDoubleField(json, "variance"));
  out.pattern.variance = variance;
  SISD_ASSIGN_OR_RETURN(score_json, json.Get("score"));
  SISD_ASSIGN_OR_RETURN(score, DecodeSpreadScore(*score_json));
  out.score = score;
  return out;
}

JsonValue EncodeIterationResult(const IterationResult& iteration) {
  JsonValue out = JsonValue::Object();
  out.Set("location", EncodeScoredLocation(iteration.location));
  out.Set("spread", iteration.spread.has_value()
                        ? EncodeScoredSpread(*iteration.spread)
                        : JsonValue::Null());
  // Written only when set: snapshots of sessions that never hit a spread
  // failure keep their exact historical bytes.
  if (!iteration.spread_error.empty()) {
    out.Set("spread_error", JsonValue::Str(iteration.spread_error));
  }
  JsonValue ranked = JsonValue::Array();
  for (const ScoredLocationPattern& entry : iteration.ranked) {
    ranked.Append(EncodeScoredLocation(entry));
  }
  out.Set("ranked", std::move(ranked));
  out.Set("candidates_evaluated",
          JsonValue::Int(int64_t(iteration.candidates_evaluated)));
  out.Set("hit_time_budget", JsonValue::Bool(iteration.hit_time_budget));
  return out;
}

Result<IterationResult> DecodeIterationResult(const JsonValue& json) {
  IterationResult out;
  SISD_ASSIGN_OR_RETURN(location_json, json.Get("location"));
  SISD_ASSIGN_OR_RETURN(location, DecodeScoredLocation(*location_json));
  out.location = std::move(location);
  SISD_ASSIGN_OR_RETURN(spread_json, json.Get("spread"));
  if (!spread_json->is_null()) {
    SISD_ASSIGN_OR_RETURN(spread, DecodeScoredSpread(*spread_json));
    out.spread = std::move(spread);
  }
  if (const JsonValue* spread_error = json.Find("spread_error")) {
    SISD_ASSIGN_OR_RETURN(text, spread_error->GetString());
    out.spread_error = std::move(text);
  }
  SISD_ASSIGN_OR_RETURN(ranked_json, json.Get("ranked"));
  if (!ranked_json->is_array()) {
    return Status::InvalidArgument("ranked list must be an array");
  }
  out.ranked.reserve(ranked_json->size());
  for (const JsonValue& entry : ranked_json->items()) {
    SISD_ASSIGN_OR_RETURN(ranked_entry, DecodeScoredLocation(entry));
    out.ranked.push_back(std::move(ranked_entry));
  }
  SISD_ASSIGN_OR_RETURN(evaluated,
                        GetSizeField(json, "candidates_evaluated"));
  out.candidates_evaluated = evaluated;
  SISD_ASSIGN_OR_RETURN(hit_budget, GetBoolField(json, "hit_time_budget"));
  out.hit_time_budget = hit_budget;
  return out;
}

JsonValue EncodeSubgroupRule(const search::SubgroupRule& rule) {
  JsonValue out = JsonValue::Object();
  out.Set("intention", serialize::EncodeIntention(rule.intention));
  out.Set("extension", serialize::EncodeExtension(rule.extension));
  out.Set("captured", serialize::EncodeExtension(rule.captured));
  out.Set("mean", serialize::EncodeVector(rule.local.mean));
  out.Set("variance", serialize::EncodeVector(rule.local.variance));
  out.Set("gain", JsonValue::Double(rule.gain));
  return out;
}

Result<search::SubgroupRule> DecodeSubgroupRule(const JsonValue& json) {
  search::SubgroupRule out;
  SISD_ASSIGN_OR_RETURN(intention_json, json.Get("intention"));
  SISD_ASSIGN_OR_RETURN(intention,
                        serialize::DecodeIntention(*intention_json));
  out.intention = std::move(intention);
  SISD_ASSIGN_OR_RETURN(extension_json, json.Get("extension"));
  SISD_ASSIGN_OR_RETURN(extension,
                        serialize::DecodeExtension(*extension_json));
  out.extension = std::move(extension);
  SISD_ASSIGN_OR_RETURN(captured_json, json.Get("captured"));
  SISD_ASSIGN_OR_RETURN(captured,
                        serialize::DecodeExtension(*captured_json));
  out.captured = std::move(captured);
  if (out.captured.universe_size() != out.extension.universe_size()) {
    return Status::InvalidArgument(
        "rule captured/extension universe sizes disagree");
  }
  SISD_ASSIGN_OR_RETURN(mean_json, json.Get("mean"));
  SISD_ASSIGN_OR_RETURN(mean, serialize::DecodeVector(*mean_json));
  out.local.mean = std::move(mean);
  SISD_ASSIGN_OR_RETURN(variance_json, json.Get("variance"));
  SISD_ASSIGN_OR_RETURN(variance,
                        serialize::DecodeVector(*variance_json));
  out.local.variance = std::move(variance);
  if (out.local.variance.size() != out.local.mean.size()) {
    return Status::InvalidArgument(
        "rule mean/variance dimensions disagree");
  }
  SISD_ASSIGN_OR_RETURN(gain, GetDoubleField(json, "gain"));
  out.gain = gain;
  return out;
}

JsonValue EncodeListMineResult(const ListMineResult& result) {
  JsonValue out = JsonValue::Object();
  JsonValue rules = JsonValue::Array();
  for (const search::SubgroupRule& rule : result.rules) {
    rules.Append(EncodeSubgroupRule(rule));
  }
  out.Set("rules", std::move(rules));
  out.Set("total_gain", JsonValue::Double(result.total_gain));
  out.Set("candidates_evaluated",
          JsonValue::Int(int64_t(result.candidates_evaluated)));
  out.Set("exhausted", JsonValue::Bool(result.exhausted));
  out.Set("hit_time_budget", JsonValue::Bool(result.hit_time_budget));
  return out;
}

Result<ListMineResult> DecodeListMineResult(const JsonValue& json) {
  ListMineResult out;
  SISD_ASSIGN_OR_RETURN(rules_json, json.Get("rules"));
  if (!rules_json->is_array()) {
    return Status::InvalidArgument("list rules must be an array");
  }
  out.rules.reserve(rules_json->size());
  for (const JsonValue& entry : rules_json->items()) {
    SISD_ASSIGN_OR_RETURN(rule, DecodeSubgroupRule(entry));
    out.rules.push_back(std::move(rule));
  }
  SISD_ASSIGN_OR_RETURN(total_gain, GetDoubleField(json, "total_gain"));
  out.total_gain = total_gain;
  SISD_ASSIGN_OR_RETURN(evaluated,
                        GetSizeField(json, "candidates_evaluated"));
  out.candidates_evaluated = evaluated;
  SISD_ASSIGN_OR_RETURN(exhausted, GetBoolField(json, "exhausted"));
  out.exhausted = exhausted;
  SISD_ASSIGN_OR_RETURN(hit_budget, GetBoolField(json, "hit_time_budget"));
  out.hit_time_budget = hit_budget;
  return out;
}

}  // namespace sisd::core
