/// \file session_io.hpp
/// \brief JSON codecs for the core session types (MinerConfig, scored
/// patterns, iteration results) — the top of the snapshot schema stack.
///
/// Exposed separately from MiningSession so tools (sisd_cli export) and
/// tests can encode/decode session pieces without a live session. Same
/// contract as serialize/snapshot.hpp: strict bit-exact round trips,
/// Result-based validation.

#ifndef SISD_CORE_SESSION_IO_HPP_
#define SISD_CORE_SESSION_IO_HPP_

#include "common/status.hpp"
#include "core/session.hpp"
#include "serialize/json.hpp"

namespace sisd::core {

/// \name Config codec.
/// @{
serialize::JsonValue EncodeMinerConfig(const MinerConfig& config);
Result<MinerConfig> DecodeMinerConfig(const serialize::JsonValue& json);
/// @}

/// \name Dataset-ref codec: the `dataset_ref {fingerprint, name}` snapshot
/// form (fingerprint as 16 hex digits).
/// @{
serialize::JsonValue EncodeDatasetRef(const catalog::DatasetRef& ref);
Result<catalog::DatasetRef> DecodeDatasetRef(
    const serialize::JsonValue& json);
/// @}

/// \name Version-chain link codec: one entry of the additive
/// `version_chain` snapshot field of rebased sessions.
/// @{
serialize::JsonValue EncodeVersionLink(const SessionVersionLink& link);
Result<SessionVersionLink> DecodeVersionLink(
    const serialize::JsonValue& json);
/// @}

/// \name Scored pattern + iteration codecs.
/// @{
serialize::JsonValue EncodeScoredLocation(const ScoredLocationPattern& p);
Result<ScoredLocationPattern> DecodeScoredLocation(
    const serialize::JsonValue& json);
serialize::JsonValue EncodeScoredSpread(const ScoredSpreadPattern& p);
Result<ScoredSpreadPattern> DecodeScoredSpread(
    const serialize::JsonValue& json);
serialize::JsonValue EncodeIterationResult(const IterationResult& iteration);
Result<IterationResult> DecodeIterationResult(
    const serialize::JsonValue& json);
/// @}

/// \name Subgroup-list codecs (the `list_history` snapshot field).
/// @{
serialize::JsonValue EncodeSubgroupRule(const search::SubgroupRule& rule);
Result<search::SubgroupRule> DecodeSubgroupRule(
    const serialize::JsonValue& json);
serialize::JsonValue EncodeListMineResult(const ListMineResult& result);
Result<ListMineResult> DecodeListMineResult(
    const serialize::JsonValue& json);
/// @}

}  // namespace sisd::core

#endif  // SISD_CORE_SESSION_IO_HPP_
