#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "common/strings.hpp"
#include "core/session_io.hpp"
#include "search/optimal_search.hpp"
#include "search/si_evaluator.hpp"
#include "serialize/snapshot.hpp"

namespace sisd::core {

using serialize::JsonValue;

std::string ScoredLocationPattern::Describe(
    const data::DataTable& table) const {
  return StrFormat("%s (n=%zu, IC=%.2f, DL=%.2f, SI=%.2f)",
                   pattern.subgroup.intention.ToString(table).c_str(),
                   pattern.subgroup.Coverage(), score.ic, score.dl, score.si);
}

std::string ScoredSpreadPattern::Describe(const data::DataTable& table) const {
  return StrFormat("%s along w=%s (var=%.4g, IC=%.2f, DL=%.2f, SI=%.2f)",
                   pattern.subgroup.intention.ToString(table).c_str(),
                   pattern.direction.ToString().c_str(), pattern.variance,
                   score.ic, score.dl, score.si);
}

Result<MiningSession> MiningSession::Create(data::Dataset dataset,
                                            MinerConfig config) {
  return Create(std::make_shared<const data::Dataset>(std::move(dataset)),
                std::move(config));
}

Result<MiningSession> MiningSession::Create(
    std::shared_ptr<const data::Dataset> dataset, MinerConfig config) {
  std::shared_ptr<const search::ConditionPool> pool;
  if (dataset != nullptr) {
    pool = std::make_shared<const search::ConditionPool>(
        search::ConditionPool::Build(dataset->descriptions,
                                     config.search.num_split_points,
                                     config.search.include_exclusions));
  }
  return Create(std::move(dataset), std::move(config), std::move(pool),
                std::nullopt);
}

Result<MiningSession> MiningSession::Create(
    std::shared_ptr<const data::Dataset> dataset, MinerConfig config,
    std::shared_ptr<const search::ConditionPool> pool,
    std::optional<catalog::DatasetRef> origin) {
  if (!dataset) {
    return Status::InvalidArgument("session needs a non-null dataset");
  }
  if (!pool) {
    return Status::InvalidArgument("session needs a non-null condition pool");
  }
  SISD_RETURN_NOT_OK(dataset->Validate());
  if (dataset->num_rows() < 2) {
    return Status::InvalidArgument("dataset needs at least two rows");
  }

  Result<model::BackgroundModel> model =
      (config.prior_mean.has_value() && config.prior_covariance.has_value())
          ? model::BackgroundModel::Create(dataset->num_rows(),
                                           *config.prior_mean,
                                           *config.prior_covariance)
          : model::BackgroundModel::CreateFromData(dataset->targets,
                                                   config.prior_ridge);
  if (!model.ok()) return model.status();

  model::PatternAssimilator assimilator(std::move(model).MoveValue());
  return MiningSession(std::move(dataset), std::move(config),
                       std::move(pool), std::move(assimilator),
                       std::move(origin));
}

Result<IterationResult> MiningSession::MineNext() {
  // One batch evaluator per iteration, bound to the current model snapshot:
  // beam search scores candidate batches through it (in parallel when
  // configured), and the final top-k is rescored through the same warmed
  // contexts instead of re-running `si::ScoreLocation` from scratch.
  search::SiLocationEvaluator evaluator(assimilator_.model(),
                                        dataset_->targets, config_.dl);
  search::SearchResult search_result;
  if (config_.use_optimal_search) {
    search::OptimalConfig optimal;
    optimal.max_depth = config_.search.max_depth;
    optimal.min_coverage = config_.search.min_coverage;
    optimal.time_budget_seconds = config_.search.time_budget_seconds;
    optimal.num_threads = config_.search.num_threads;
    search::OptimalResult optimal_result = search::OptimalLocationSearch(
        dataset_->descriptions, *pool_, assimilator_.model(),
        dataset_->targets, config_.dl, optimal, thread_pool_.get());
    search_result.num_evaluated = optimal_result.num_evaluated;
    search_result.hit_time_budget = !optimal_result.completed;
    if (!optimal_result.best.intention.empty()) {
      search_result.top.push_back(std::move(optimal_result.best));
    }
  } else {
    search_result =
        search::BeamSearch(dataset_->descriptions, *pool_, config_.search,
                           evaluator, thread_pool_.get());
  }
  if (search_result.top.empty()) {
    return Status::NotFound(
        "search found no subgroup satisfying the constraints");
  }

  IterationResult iteration;
  iteration.candidates_evaluated = search_result.num_evaluated;
  iteration.hit_time_budget = search_result.hit_time_budget;

  for (const search::ScoredSubgroup& scored : search_result.top) {
    pattern::Subgroup subgroup;
    subgroup.intention = scored.intention;
    subgroup.extension = scored.extension;
    ScoredLocationPattern entry;
    entry.pattern =
        pattern::LocationPattern::Compute(std::move(subgroup),
                                          dataset_->targets);
    entry.score = evaluator.ScoreSubgroup(
        entry.pattern.subgroup.extension, entry.pattern.mean,
        entry.pattern.subgroup.intention.size());
    iteration.ranked.push_back(std::move(entry));
  }
  iteration.location = iteration.ranked.front();

  // Assimilate the location pattern (Theorem 1).
  SISD_RETURN_NOT_OK(assimilator_.AddLocationPattern(
      iteration.location.pattern.subgroup.extension,
      iteration.location.pattern.mean));

  // Spread step (Theorem 2). The location constraint above is already in
  // the model, so a spread failure must not abort the iteration: it is
  // recorded location-only with the reason in `spread_error`, keeping
  // history and generation in sync with the mutated model.
  AttachSpreadPattern(&iteration);

  history_.push_back(iteration);
  Touch();
  return iteration;
}

void MiningSession::AttachSpreadPattern(IterationResult* iteration) {
  if (config_.mix != PatternMix::kLocationAndSpread ||
      dataset_->num_targets() < 1) {
    return;
  }
  Result<ScoredSpreadPattern> spread =
      FindSpreadPattern(iteration->location.pattern.subgroup);
  if (!spread.ok()) {
    iteration->spread_error = spread.status().ToString();
    return;
  }
  const Status added = assimilator_.AddSpreadPattern(
      spread.Value().pattern.subgroup.extension,
      spread.Value().pattern.direction, iteration->location.pattern.mean,
      spread.Value().pattern.variance);
  if (!added.ok()) {
    iteration->spread_error = added.ToString();
    return;
  }
  iteration->spread = std::move(spread).MoveValue();
}

Result<IterationResult> MiningSession::AssimilateIntention(
    const pattern::Intention& intention) {
  SISD_ASSIGN_OR_RETURN(scored, ScoreIntention(intention));

  IterationResult iteration;
  iteration.candidates_evaluated = 0;
  iteration.ranked.push_back(scored);
  iteration.location = std::move(scored);

  SISD_RETURN_NOT_OK(assimilator_.AddLocationPattern(
      iteration.location.pattern.subgroup.extension,
      iteration.location.pattern.mean));

  AttachSpreadPattern(&iteration);

  history_.push_back(iteration);
  Touch();
  return iteration;
}

Result<ListMineResult> MiningSession::MineList(int max_rules) {
  if (max_rules < 1) {
    return Status::InvalidArgument("max_rules must be >= 1");
  }
  if (!list_.has_value()) {
    list_ = search::MakeEmptySubgroupList(dataset_->targets,
                                          config_.list_gain);
  }
  search::ListSearchConfig list_config;
  list_config.search = config_.search;
  list_config.gain = config_.list_gain;
  list_config.max_rules = max_rules;
  list_config.min_captured =
      std::max<size_t>(size_t{1}, config_.search.min_coverage);

  const size_t rules_before = list_->rules.size();
  const search::ListMineStats stats = search::ExtendSubgroupList(
      dataset_->descriptions, dataset_->targets, *pool_, list_config,
      &*list_, thread_pool_.get());

  ListMineResult result;
  result.rules.assign(list_->rules.begin() +
                          static_cast<ptrdiff_t>(rules_before),
                      list_->rules.end());
  result.total_gain = list_->total_gain;
  result.candidates_evaluated = stats.num_evaluated;
  result.exhausted = stats.exhausted;
  result.hit_time_budget = stats.hit_time_budget;
  // A call that appended nothing left the list untouched; it is not
  // history (so snapshots, replays and serve generations stay in sync
  // with actual state changes).
  if (!result.rules.empty()) {
    list_history_.push_back(result);
  }
  Touch();
  return result;
}

Result<RebaseOutcome> MiningSession::Rebase(
    std::shared_ptr<const data::Dataset> dataset,
    std::shared_ptr<const search::ConditionPool> pool,
    std::optional<catalog::DatasetRef> origin) {
  if (!dataset) {
    return Status::InvalidArgument("rebase needs a non-null dataset");
  }
  if (!pool) {
    return Status::InvalidArgument("rebase needs a non-null condition pool");
  }
  SISD_RETURN_NOT_OK(dataset->Validate());
  if (dataset->num_rows() < dataset_->num_rows()) {
    return Status::InvalidArgument(StrFormat(
        "rebase target has %zu rows, fewer than the session's %zu — only "
        "row-appended versions are valid targets",
        dataset->num_rows(), dataset_->num_rows()));
  }
  if (dataset->target_names != dataset_->target_names) {
    return Status::InvalidArgument("rebase cannot change the target space");
  }
  if (dataset->num_descriptions() != dataset_->num_descriptions()) {
    return Status::InvalidArgument(
        "rebase cannot change the description schema");
  }
  for (size_t j = 0; j < dataset_->num_descriptions(); ++j) {
    const data::Column& old_col = dataset_->descriptions.column(j);
    const data::Column& new_col = dataset->descriptions.column(j);
    if (old_col.name() != new_col.name() ||
        old_col.kind() != new_col.kind()) {
      return Status::InvalidArgument(
          "rebase cannot change the description schema (column '" +
          old_col.name() + "' differs)");
    }
  }

  RebaseOutcome outcome;
  outcome.appended_rows = dataset->num_rows() - dataset_->num_rows();

  // Build the rebased state fully on the side, then swap it in — any
  // failure below leaves *this untouched. The fresh prior is recomputed
  // from the grown targets (cheap two-pass moments); the constraint
  // registry is then rebuilt by replaying each assimilated intention,
  // which runs the same rank-one factorization updates a live
  // `AssimilateIntention` call would — so the result is bit-identical to
  // a fresh session on `dataset` fed the same history.
  SISD_ASSIGN_OR_RETURN(fresh,
                        Create(dataset, config_, pool, std::move(origin)));
  fresh.thread_pool_ = thread_pool_;
  fresh.version_chain_ = version_chain_;
  {
    SessionVersionLink link;
    link.fingerprint = origin_.has_value() ? origin_->fingerprint : 0;
    link.name = origin_.has_value() ? origin_->name : dataset_->name;
    link.rows = dataset_->num_rows();
    fresh.version_chain_.push_back(std::move(link));
  }
  for (const IterationResult& iteration : history_) {
    Result<IterationResult> replayed = fresh.AssimilateIntention(
        iteration.location.pattern.subgroup.intention);
    if (!replayed.ok()) return replayed.status();
    ++outcome.replayed_iterations;
  }
  // Subgroup-list rules are re-derived on the grown rows: extensions
  // re-evaluated, local models refitted, gains rescored against the grown
  // default model — exactly what the miner would have recorded had it
  // appended these intentions on the new data.
  for (const ListMineResult& saved : list_history_) {
    if (!fresh.list_.has_value()) {
      fresh.list_ = search::MakeEmptySubgroupList(fresh.dataset_->targets,
                                                  fresh.config_.list_gain);
    }
    ListMineResult rewritten;
    rewritten.candidates_evaluated = saved.candidates_evaluated;
    rewritten.exhausted = saved.exhausted;
    rewritten.hit_time_budget = saved.hit_time_budget;
    for (const search::SubgroupRule& rule : saved.rules) {
      Result<search::SubgroupRule> rederived = search::RederiveSubgroupRule(
          fresh.dataset_->descriptions, fresh.dataset_->targets,
          fresh.config_.list_gain, rule.intention, *fresh.list_);
      if (!rederived.ok()) return rederived.status();
      rewritten.rules.push_back(rederived.Value());
      search::ReplaySubgroupRule(std::move(rederived).MoveValue(),
                                 &*fresh.list_);
      ++outcome.replayed_rules;
    }
    rewritten.total_gain = fresh.list_->total_gain;
    fresh.list_history_.push_back(std::move(rewritten));
  }
  *this = std::move(fresh);
  Touch();
  return outcome;
}

Result<std::vector<IterationResult>> MiningSession::MineIterations(
    int count) {
  std::vector<IterationResult> results;
  results.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    SISD_ASSIGN_OR_RETURN(iteration, MineNext());
    results.push_back(std::move(iteration));
  }
  return results;
}

Result<ScoredLocationPattern> MiningSession::ScoreIntention(
    const pattern::Intention& intention) const {
  pattern::Subgroup subgroup =
      pattern::Subgroup::FromIntention(dataset_->descriptions, intention);
  if (subgroup.extension.empty()) {
    return Status::InvalidArgument("intention matches no rows");
  }
  ScoredLocationPattern out;
  out.pattern =
      pattern::LocationPattern::Compute(std::move(subgroup),
                                        dataset_->targets);
  out.score = si::ScoreLocation(assimilator_.model(),
                                out.pattern.subgroup.extension,
                                out.pattern.mean,
                                out.pattern.subgroup.intention.size(),
                                config_.dl);
  return out;
}

Result<ScoredSpreadPattern> MiningSession::ScoreSpreadForIntention(
    const pattern::Intention& intention, const linalg::Vector& w) const {
  pattern::Subgroup subgroup =
      pattern::Subgroup::FromIntention(dataset_->descriptions, intention);
  if (subgroup.extension.empty()) {
    return Status::InvalidArgument("intention matches no rows");
  }
  ScoredSpreadPattern out;
  out.pattern =
      pattern::SpreadPattern::Compute(std::move(subgroup), dataset_->targets,
                                      w);
  out.score = si::ScoreSpread(assimilator_.model(),
                              out.pattern.subgroup.extension,
                              out.pattern.direction, out.pattern.variance,
                              out.pattern.subgroup.intention.size(),
                              config_.dl);
  return out;
}

Result<ScoredSpreadPattern> MiningSession::FindSpreadPattern(
    const pattern::Subgroup& subgroup) const {
  if (subgroup.extension.empty()) {
    return Status::InvalidArgument("subgroup has empty extension");
  }
  optimize::SpreadObjective objective(assimilator_.model(),
                                      subgroup.extension, dataset_->targets);
  optimize::SphereOptimum optimum;
  if (config_.spread_sparsity == 2 && dataset_->num_targets() >= 2) {
    optimum = optimize::MaximizePairSparse(objective, nullptr);
  } else {
    optimum = optimize::MaximizeOnSphere(objective, config_.spread_optimizer);
  }

  ScoredSpreadPattern out;
  out.pattern = pattern::SpreadPattern::Compute(subgroup, dataset_->targets,
                                                optimum.direction);
  out.score = si::ScoreSpread(assimilator_.model(), subgroup.extension,
                              out.pattern.direction, out.pattern.variance,
                              subgroup.intention.size(), config_.dl);
  return out;
}

std::string MiningSession::SaveToString(SnapshotForm form) const {
  JsonValue out = JsonValue::Object();
  out.Set("format", JsonValue::Str(kSessionFormatTag));
  out.Set("schema_version", JsonValue::Int(kSessionSchemaVersion));
  if (form == SnapshotForm::kDatasetRef && origin_.has_value()) {
    // Additive schema: `dataset_ref` replaces `dataset` for sessions with
    // a catalog origin; everything else is unchanged. A session without an
    // origin has no catalog to point at, so it falls back to inline.
    out.Set("dataset_ref", EncodeDatasetRef(*origin_));
    // Additive field: the pre-rebase dataset lineage. Written only for
    // rebased sessions in ref form, so never-rebased snapshots (and all
    // inline ones) keep their exact historical bytes.
    if (!version_chain_.empty()) {
      JsonValue chain = JsonValue::Array();
      for (const SessionVersionLink& link : version_chain_) {
        chain.Append(EncodeVersionLink(link));
      }
      out.Set("version_chain", std::move(chain));
    }
  } else {
    out.Set("dataset", serialize::EncodeDataset(*dataset_));
  }
  out.Set("config", EncodeMinerConfig(config_));
  out.Set("assimilator", serialize::EncodeAssimilator(assimilator_));
  JsonValue history = JsonValue::Array();
  for (const IterationResult& iteration : history_) {
    history.Append(EncodeIterationResult(iteration));
  }
  out.Set("history", std::move(history));
  // Additive schema field: written only when list mining happened, so
  // sessions that never called MineList keep their exact historical bytes
  // (same policy as `spread_error` above and `use_optimal_search` in the
  // config codec).
  if (!list_history_.empty()) {
    JsonValue list_history = JsonValue::Array();
    for (const ListMineResult& entry : list_history_) {
      list_history.Append(EncodeListMineResult(entry));
    }
    out.Set("list_history", std::move(list_history));
  }
  return out.Write();
}

Status MiningSession::Save(const std::string& path) const {
  return serialize::WriteTextFile(path, SaveToString());
}

Result<MiningSession> MiningSession::RestoreFromString(
    const std::string& text, catalog::DatasetCatalog* catalog) {
  SISD_ASSIGN_OR_RETURN(root, JsonValue::Parse(text));
  SISD_ASSIGN_OR_RETURN(format_json, root.Get("format"));
  SISD_ASSIGN_OR_RETURN(format, format_json->GetString());
  if (format != kSessionFormatTag) {
    return Status::InvalidArgument("not a sisd session snapshot (format '" +
                                   format + "')");
  }
  SISD_ASSIGN_OR_RETURN(version_json, root.Get("schema_version"));
  SISD_ASSIGN_OR_RETURN(version, version_json->GetInt());
  if (version != kSessionSchemaVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported session schema version %lld (expected %lld)",
                  static_cast<long long>(version),
                  static_cast<long long>(kSessionSchemaVersion)));
  }

  SISD_ASSIGN_OR_RETURN(config_json, root.Get("config"));
  SISD_ASSIGN_OR_RETURN(config, DecodeMinerConfig(*config_json));

  // The dataset is stored inline (self-contained snapshot) or as a
  // `dataset_ref` the catalog resolves; a catalog also lets an inline
  // snapshot adopt the shared instance when the content fingerprint
  // matches a registered dataset.
  const JsonValue* dataset_json = root.Find("dataset");
  const JsonValue* ref_json = root.Find("dataset_ref");
  if ((dataset_json != nullptr) == (ref_json != nullptr)) {
    return Status::InvalidArgument(
        "snapshot must store exactly one of 'dataset' and 'dataset_ref'");
  }
  std::shared_ptr<const data::Dataset> shared_dataset;
  std::optional<catalog::DatasetRef> origin;
  if (ref_json != nullptr) {
    SISD_ASSIGN_OR_RETURN(ref, DecodeDatasetRef(*ref_json));
    if (catalog == nullptr) {
      return Status::InvalidArgument(
          "snapshot stores dataset_ref {fingerprint: " +
          catalog::FingerprintToHex(ref.fingerprint) + ", name: '" +
          ref.name + "'} but no catalog was given to resolve it");
    }
    SISD_ASSIGN_OR_RETURN(pinned, catalog->Resolve(ref, /*pin=*/false));
    shared_dataset = pinned.dataset;
    origin = pinned.ref();
  } else {
    SISD_ASSIGN_OR_RETURN(dataset, serialize::DecodeDataset(*dataset_json));
    if (catalog != nullptr) {
      // Byte-verified content match: a fingerprint collision reads as
      // "not in the catalog" and keeps the private decoded copy.
      Result<catalog::PinnedDataset> known = catalog->MatchEncoded(
          serialize::EncodeDataset(dataset).Write(), /*pin=*/false);
      if (known.ok()) {
        // Same content already registered: share it (and its pool below)
        // instead of keeping the private decoded copy.
        shared_dataset = known.Value().dataset;
        origin = known.Value().ref();
      }
    }
    if (shared_dataset == nullptr) {
      shared_dataset =
          std::make_shared<const data::Dataset>(std::move(dataset));
    }
  }

  std::vector<SessionVersionLink> version_chain;
  if (const JsonValue* chain_json = root.Find("version_chain")) {
    if (!chain_json->is_array()) {
      return Status::InvalidArgument("version_chain must be an array");
    }
    version_chain.reserve(chain_json->size());
    for (const JsonValue& entry : chain_json->items()) {
      SISD_ASSIGN_OR_RETURN(link, DecodeVersionLink(entry));
      version_chain.push_back(std::move(link));
    }
  }

  SISD_ASSIGN_OR_RETURN(assimilator_json, root.Get("assimilator"));
  SISD_ASSIGN_OR_RETURN(assimilator,
                        serialize::DecodeAssimilator(*assimilator_json));
  if (assimilator.model().num_rows() != shared_dataset->num_rows() ||
      assimilator.model().dim() != shared_dataset->num_targets()) {
    return Status::InvalidArgument(
        "snapshot model shape disagrees with its dataset");
  }

  // Derived state is rebuilt or fetched, never stored: the condition pool
  // is a pure function of (descriptions, num_split_points,
  // include_exclusions) — catalog-known datasets reuse the memoized shared
  // pool and skip construction entirely — and per-group factorization
  // caches came back with the model (only caches that were cold at save
  // time are recomputed lazily).
  std::shared_ptr<const search::ConditionPool> pool;
  if (origin.has_value() && catalog != nullptr) {
    catalog::PinnedDataset pinned;
    pinned.dataset = shared_dataset;
    pinned.fingerprint = origin->fingerprint;
    pool = catalog->PoolFor(pinned, config.search.num_split_points,
                            config.search.include_exclusions);
  } else {
    pool = std::make_shared<const search::ConditionPool>(
        search::ConditionPool::Build(shared_dataset->descriptions,
                                     config.search.num_split_points,
                                     config.search.include_exclusions));
  }
  MiningSession session(std::move(shared_dataset), std::move(config),
                        std::move(pool), std::move(assimilator),
                        std::move(origin));
  session.version_chain_ = std::move(version_chain);

  SISD_ASSIGN_OR_RETURN(history_json, root.Get("history"));
  if (!history_json->is_array()) {
    return Status::InvalidArgument("session history must be an array");
  }
  session.history_.reserve(history_json->size());
  for (const JsonValue& entry : history_json->items()) {
    SISD_ASSIGN_OR_RETURN(iteration, DecodeIterationResult(entry));
    session.history_.push_back(std::move(iteration));
  }

  // Additive field: the subgroup-list history. The current list is derived
  // state — rebuilt by replaying the saved rules in order (integer bitset
  // ops plus stored doubles) onto a freshly fitted default model, which is
  // a deterministic function of the targets. The rebuilt list therefore
  // continues mining bit-identically to the saved one.
  if (const JsonValue* list_history_json = root.Find("list_history")) {
    if (!list_history_json->is_array()) {
      return Status::InvalidArgument("session list_history must be an array");
    }
    session.list_history_.reserve(list_history_json->size());
    for (const JsonValue& entry : list_history_json->items()) {
      SISD_ASSIGN_OR_RETURN(list_result, DecodeListMineResult(entry));
      session.list_history_.push_back(std::move(list_result));
    }
    if (!session.list_history_.empty()) {
      session.list_ = search::MakeEmptySubgroupList(
          session.dataset_->targets, session.config_.list_gain);
      const size_t num_rows = session.dataset_->num_rows();
      for (const ListMineResult& entry : session.list_history_) {
        for (const search::SubgroupRule& rule : entry.rules) {
          if (rule.extension.universe_size() != num_rows) {
            return Status::InvalidArgument(
                "list rule extension universe disagrees with the dataset");
          }
          search::ReplaySubgroupRule(rule, &*session.list_);
        }
      }
    }
  }
  return session;
}

Result<MiningSession> MiningSession::Restore(
    const std::string& path, catalog::DatasetCatalog* catalog) {
  SISD_ASSIGN_OR_RETURN(text, serialize::ReadTextFile(path));
  return RestoreFromString(text, catalog);
}

}  // namespace sisd::core
