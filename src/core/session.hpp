/// \file session.hpp
/// \brief Persistent mining sessions: the paper's analyst-in-the-loop
/// dialogue (mine, show, assimilate, re-mine — §II-B, Table I) as a durable,
/// resumable object.
///
/// A `MiningSession` owns its dataset (shared ownership, no lifetime traps),
/// the evolving background model with its assimilated-constraint registry,
/// and the full iteration history. `Save` serializes the complete session
/// state to a versioned JSON snapshot; `Restore` rebuilds it so that the
/// next `MineNext()` produces byte-identical output to a session that never
/// stopped: model parameters, cached factorizations (maintained by rank-one
/// updates, so their bits are state, not derivable), constraints and history
/// all round-trip exactly.
///
/// `IterativeMiner` (core/miner.hpp) remains as a thin non-owning adapter
/// over this class for callers that manage dataset lifetime themselves.

#ifndef SISD_CORE_SESSION_HPP_
#define SISD_CORE_SESSION_HPP_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/dataset_catalog.hpp"
#include "common/status.hpp"
#include "data/table.hpp"
#include "model/assimilator.hpp"
#include "model/background_model.hpp"
#include "optimize/sphere_optimizer.hpp"
#include "pattern/patterns.hpp"
#include "search/beam_search.hpp"
#include "search/condition_pool.hpp"
#include "search/list_miner.hpp"
#include "search/thread_pool.hpp"
#include "si/interestingness.hpp"
#include "si/list_gain.hpp"

namespace sisd::core {

/// \brief Which pattern types an iteration should produce.
enum class PatternMix {
  kLocationOnly,       ///< location pattern per iteration (e.g. mammals §III-B)
  kLocationAndSpread,  ///< location + spread per iteration (§III-A, C, D)
};

/// \brief Everything configurable about a mining session. Defaults
/// reproduce the paper's settings (§III: beam width 40, depth 4, 4 split
/// points, top-150, gamma = 0.1, eta = 1).
struct MinerConfig {
  search::SearchConfig search;
  si::DescriptionLengthParams dl;
  PatternMix mix = PatternMix::kLocationAndSpread;
  /// 0 = dense spread direction; 2 = the §III-C pair sweep (2-sparse w).
  int spread_sparsity = 0;
  optimize::SphereOptimizerConfig spread_optimizer;
  /// Prior mean/covariance; empty -> empirical values (the paper's setup).
  std::optional<linalg::Vector> prior_mean;
  std::optional<linalg::Matrix> prior_covariance;
  /// Ridge added to an empirical prior covariance (keeps it SPD).
  double prior_ridge = 1e-8;
  /// Mine each iteration's location pattern with the provably-optimal
  /// branch-and-bound (`search::OptimalLocationSearch`) instead of beam
  /// search. The ranked list then holds the single global optimum per
  /// iteration; `search.max_depth`, `min_coverage`, `time_budget_seconds`
  /// and `num_threads` are honored, beam-only knobs are ignored. The
  /// tight bound engages on the first iteration of univariate sessions;
  /// later iterations (evolved multi-group model) fall back to pure
  /// best-first enumeration, so keep `max_depth` small.
  bool use_optimal_search = false;
  /// Gain criterion of the subgroup-list workload (`MineList`); the search
  /// knobs in `search` are shared between both workloads.
  si::ListGainParams list_gain;
};

/// \brief A fully scored location pattern.
struct ScoredLocationPattern {
  pattern::LocationPattern pattern;
  si::LocationScore score;

  /// Renders e.g. "a3 = '1' (n=40, SI=48.35)".
  std::string Describe(const data::DataTable& table) const;
};

/// \brief A fully scored spread pattern.
struct ScoredSpreadPattern {
  pattern::SpreadPattern pattern;
  si::SpreadScore score;

  std::string Describe(const data::DataTable& table) const;
};

/// \brief Output of one mining iteration.
struct IterationResult {
  ScoredLocationPattern location;
  std::optional<ScoredSpreadPattern> spread;
  /// Set when the spread step failed *after* the location pattern was
  /// already assimilated (rare numerical edge): the iteration is still
  /// recorded — the model did move — with `spread` empty and the reason
  /// here, so session state, history and snapshots never disagree.
  std::string spread_error;
  /// The full ranked list from the beam search (top-k subgroups by SI),
  /// useful for Table-I-style inspection.
  std::vector<ScoredLocationPattern> ranked;
  /// Search diagnostics.
  size_t candidates_evaluated = 0;
  bool hit_time_budget = false;
};

/// \brief Output of one `MineList` call — the second history type of the
/// session (list rounds are recorded separately from the iterative
/// dialogue's `IterationResult`s; see the snapshot history-type policy in
/// docs/PROTOCOL.md).
struct ListMineResult {
  /// The rules this call appended, in list order (full records, so replay
  /// from a snapshot needs no re-search).
  std::vector<search::SubgroupRule> rules;
  /// The list's cumulative gain after this call.
  double total_gain = 0.0;
  size_t candidates_evaluated = 0;
  /// No further rule can compress: the list is complete.
  bool exhausted = false;
  bool hit_time_budget = false;
};

/// \brief One hop of a session's dataset lineage: the dataset the session
/// was mining *before* a `Rebase` moved it to an appended version.
struct SessionVersionLink {
  /// Catalog fingerprint of the pre-rebase dataset (0 when the session
  /// owned a private copy with no catalog origin).
  uint64_t fingerprint = 0;
  std::string name;
  /// Row count the session had on that version.
  size_t rows = 0;
};

/// \brief Output of `Rebase`.
struct RebaseOutcome {
  /// Rows the new version added over the session's previous dataset.
  size_t appended_rows = 0;
  /// Iterative-dialogue constraints replayed through the rank-one
  /// assimilation path.
  size_t replayed_iterations = 0;
  /// Subgroup-list rules re-derived and replayed on the grown data.
  size_t replayed_rules = 0;
};

/// \brief Snapshot schema version written by `Save`. Bumped only on
/// incompatible layout changes; `Restore` rejects versions it does not
/// know (see README "Session snapshots" for the policy).
inline constexpr int64_t kSessionSchemaVersion = 1;

/// \brief The `format` tag identifying session snapshot files.
inline constexpr const char* kSessionFormatTag = "sisd-session";

/// \brief How `SaveToString` stores the dataset.
enum class SnapshotForm {
  /// Embed the full dataset (the default: snapshots are self-contained
  /// and portable to processes without a catalog).
  kInlineDataset,
  /// Store only `dataset_ref {fingerprint, name}` (requires the session to
  /// have a catalog origin; falls back to inline otherwise). Restoring
  /// needs a catalog that can resolve the fingerprint — the serve layer
  /// spills this way so evicted sessions share the catalog's dataset and
  /// condition pool on restore instead of rebuilding private copies.
  kDatasetRef,
};

/// \brief A durable, resumable iterative mining session.
class MiningSession {
 public:
  /// Builds a session taking ownership of `dataset` (moved in). Fails when
  /// the dataset is inconsistent or the prior covariance is not SPD.
  static Result<MiningSession> Create(data::Dataset dataset,
                                      MinerConfig config);

  /// Builds a session sharing ownership of `dataset` (must be non-null).
  static Result<MiningSession> Create(
      std::shared_ptr<const data::Dataset> dataset, MinerConfig config);

  /// Builds a session over a catalog-shared dataset and a prebuilt shared
  /// condition pool (must match the dataset and `config.search`'s
  /// num_split_points / include_exclusions — the catalog's `PoolFor`
  /// guarantees this). The session records `origin` so `SaveToString`
  /// with `SnapshotForm::kDatasetRef` can address the dataset by
  /// fingerprint instead of embedding it. This is how the serve layer
  /// opens sessions: the marginal cost per extra session on one dataset is
  /// the model state only — no dataset copy, no pool build.
  static Result<MiningSession> Create(
      std::shared_ptr<const data::Dataset> dataset, MinerConfig config,
      std::shared_ptr<const search::ConditionPool> pool,
      std::optional<catalog::DatasetRef> origin);

  /// Runs one mining iteration and assimilates what it finds.
  Result<IterationResult> MineNext();

  /// Runs `count` iterations, stopping early on search failure.
  Result<std::vector<IterationResult>> MineIterations(int count);

  /// Extends the session's subgroup list by up to `max_rules` greedily
  /// chosen rules (SSD++-style; search/list_miner.hpp). The list persists
  /// across calls — each call continues where the last stopped — and is
  /// independent of the iterative dialogue: `MineNext` evolves the
  /// background model, `MineList` routes rows to per-rule local models
  /// with the dataset marginal as the default rule. A call that appends at
  /// least one rule is recorded in `list_history()`; a call that appends
  /// none returns `exhausted` without changing any session state.
  Result<ListMineResult> MineList(int max_rules);

  /// Assimilates an analyst-chosen intention without searching: scores it
  /// as a location pattern under the current model, registers the location
  /// constraint (plus the best spread pattern when the config mixes them —
  /// exactly what `MineNext` does after its search), and appends the
  /// result to the history (`candidates_evaluated` stays 0, the ranked
  /// list holds just this pattern). This is the paper's "analyst tells the
  /// system what they know" step when the knowledge did not come from the
  /// search. Fails when the intention matches no rows.
  Result<IterationResult> AssimilateIntention(
      const pattern::Intention& intention);

  /// Moves the session onto `dataset`, a row-appended version of its
  /// current dataset (same description schema and target names, at least
  /// as many rows), without refitting from a cold start: the background
  /// model's prior is recomputed on the grown targets and every
  /// assimilated constraint is replayed through the same rank-one
  /// factorization updates `AssimilateIntention` uses, so the rebased
  /// state is bit-identical to a fresh session on `dataset` that
  /// assimilated the same history — that equivalence is the determinism
  /// contract `rebase_test` checks. The iteration history is rewritten in
  /// assimilate form (candidates 0, ranked = the replayed pattern) and
  /// subgroup-list rules are re-derived on the grown rows; `origin`
  /// becomes the new catalog origin (the previous origin is recorded in
  /// `version_chain()`). `pool` must match `dataset` and the session's
  /// search config — on catalog appends, `DatasetCatalog::Append` has
  /// already refreshed it incrementally. Strong exception safety: on any
  /// error the session is unchanged.
  Result<RebaseOutcome> Rebase(
      std::shared_ptr<const data::Dataset> dataset,
      std::shared_ptr<const search::ConditionPool> pool,
      std::optional<catalog::DatasetRef> origin);

  /// The datasets this session mined before each `Rebase`, oldest first
  /// (empty for never-rebased sessions). Serialized only in
  /// `SnapshotForm::kDatasetRef` snapshots (additive `version_chain`
  /// field) — inline snapshots are self-contained and unchanged.
  const std::vector<SessionVersionLink>& version_chain() const {
    return version_chain_;
  }

  /// Deep-copies the session (dataset shared, model/constraints/history
  /// copied): the copy mines independently and byte-identically to the
  /// original from this point. Used by the serve layer for consistent
  /// read-only work while the original keeps mining.
  MiningSession Clone() const { return MiningSession(*this); }

  /// \name Persistence.
  /// @{

  /// Serializes the full session state (dataset, config, model + initial
  /// model + constraints with cached factorizations, history) as versioned
  /// JSON text. Deterministic: the same session always produces the same
  /// bytes. `form` selects how the dataset is stored (inline by default;
  /// see `SnapshotForm`).
  std::string SaveToString(
      SnapshotForm form = SnapshotForm::kInlineDataset) const;

  /// Writes `SaveToString()` to `path`.
  Status Save(const std::string& path) const;

  /// Rebuilds a session from snapshot text: validates format tag and schema
  /// version, restores the dataset and model state bit-identically, and
  /// rewarms the derived search structures (condition pool, per-group
  /// factorization caches) that are rebuilt rather than stored.
  ///
  /// With a `catalog`:
  ///  - `dataset_ref` snapshots resolve their dataset through it (without a
  ///    catalog they fail with InvalidArgument — the data is not in the
  ///    snapshot);
  ///  - inline snapshots whose dataset fingerprint matches a catalog entry
  ///    adopt the catalog's shared instance and memoized condition pool
  ///    instead of keeping the decoded private copy — restore then skips
  ///    pool construction entirely.
  /// Mining output is byte-identical in all cases.
  static Result<MiningSession> RestoreFromString(
      const std::string& text, catalog::DatasetCatalog* catalog = nullptr);

  /// Reads and restores a snapshot file.
  static Result<MiningSession> Restore(
      const std::string& path, catalog::DatasetCatalog* catalog = nullptr);

  /// @}

  /// The current background model.
  const model::BackgroundModel& model() const {
    return assimilator_.model();
  }

  /// The assimilator (constraint registry).
  const model::PatternAssimilator& assimilator() const {
    return assimilator_;
  }

  /// Mutable assimilator access, e.g. for refit timing studies.
  model::PatternAssimilator* mutable_assimilator() { return &assimilator_; }

  /// Scores an arbitrary intention as a location pattern under the *current*
  /// model (used to track SI of earlier patterns across iterations, as in
  /// Table I). Fails on empty extensions.
  Result<ScoredLocationPattern> ScoreIntention(
      const pattern::Intention& intention) const;

  /// Scores a spread pattern (direction `w`) for an arbitrary intention
  /// under the current model.
  Result<ScoredSpreadPattern> ScoreSpreadForIntention(
      const pattern::Intention& intention, const linalg::Vector& w) const;

  /// Finds the best spread direction for a given subgroup under the current
  /// model (without assimilating anything).
  Result<ScoredSpreadPattern> FindSpreadPattern(
      const pattern::Subgroup& subgroup) const;

  /// The dataset being mined.
  const data::Dataset& dataset() const { return *dataset_; }

  /// Shared ownership handle to the dataset.
  const std::shared_ptr<const data::Dataset>& shared_dataset() const {
    return dataset_;
  }

  /// The session configuration.
  const MinerConfig& config() const { return config_; }

  /// The condition pool (for diagnostics and ablation benches).
  const search::ConditionPool& condition_pool() const { return *pool_; }

  /// Shared ownership handle to the (immutable) condition pool. Sessions
  /// opened through a catalog share one instance per
  /// (dataset, num_splits, include_exclusions).
  const std::shared_ptr<const search::ConditionPool>& shared_condition_pool()
      const {
    return pool_;
  }

  /// Where the dataset came from when the session was opened through a
  /// catalog (or restored through one that knew the dataset); empty for
  /// sessions owning a private copy. Drives the `dataset_ref` snapshot
  /// form.
  const std::optional<catalog::DatasetRef>& dataset_origin() const {
    return origin_;
  }

  /// History of all iterations run so far (restored sessions carry the
  /// full history of the saved session).
  const std::vector<IterationResult>& history() const { return history_; }

  /// History of all `MineList` calls that appended rules (the second
  /// snapshot history type; additive `list_history` field).
  const std::vector<ListMineResult>& list_history() const {
    return list_history_;
  }

  /// The session's current subgroup list; null until the first `MineList`
  /// call (or restore of a snapshot with list history).
  const search::SubgroupList* subgroup_list() const {
    return list_.has_value() ? &*list_ : nullptr;
  }

  /// \name Runtime attachments and activity tracking (not serialized).
  /// @{

  /// Attaches a shared worker pool: `MineNext` scores through it instead
  /// of spinning up a per-search pool. Null detaches (back to per-call
  /// pools). The pool must outlive the session's mining calls; results are
  /// bit-identical with or without it.
  void set_thread_pool(std::shared_ptr<search::ThreadPool> pool) {
    thread_pool_ = std::move(pool);
  }

  /// The attached shared pool (null when none).
  const std::shared_ptr<search::ThreadPool>& thread_pool() const {
    return thread_pool_;
  }

  /// When the session last mutated (created, restored, mined or
  /// assimilated). Monotonic-clock based; not part of the snapshot.
  std::chrono::steady_clock::time_point last_activity() const {
    return last_activity_;
  }

  /// Seconds since `last_activity()`. Diagnostic/ops surface for session
  /// owners (e.g. a wall-clock idle-expiry policy layered on top); note
  /// the serve layer's LRU deliberately ranks coldness by a *logical*
  /// touch clock instead, so its behaviour stays reproducible.
  double IdleSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         last_activity_)
        .count();
  }

  /// @}

 private:
  MiningSession(std::shared_ptr<const data::Dataset> dataset,
                MinerConfig config,
                std::shared_ptr<const search::ConditionPool> pool,
                model::PatternAssimilator assimilator,
                std::optional<catalog::DatasetRef> origin)
      : dataset_(std::move(dataset)),
        config_(std::move(config)),
        pool_(std::move(pool)),
        assimilator_(std::move(assimilator)),
        origin_(std::move(origin)) {}

  /// Stamps `last_activity_` now.
  void Touch() { last_activity_ = std::chrono::steady_clock::now(); }

  /// Finds + assimilates the spread pattern for `iteration`'s location
  /// subgroup (no-op for location-only configs). Never fails the
  /// iteration: the location constraint is already assimilated when this
  /// runs, so errors land in `iteration->spread_error` instead.
  void AttachSpreadPattern(IterationResult* iteration);

  std::shared_ptr<const data::Dataset> dataset_;
  MinerConfig config_;
  /// Never null; shared with the catalog's artifact cache for
  /// catalog-opened sessions, privately owned otherwise. Immutable either
  /// way, so sharing is safe across threads and clones.
  std::shared_ptr<const search::ConditionPool> pool_;
  model::PatternAssimilator assimilator_;
  std::optional<catalog::DatasetRef> origin_;
  /// Dataset lineage across rebases, oldest first (see `version_chain()`).
  std::vector<SessionVersionLink> version_chain_;
  std::vector<IterationResult> history_;
  /// Current subgroup list (absent until list mining starts). Rebuilt on
  /// restore by replaying `list_history_`'s rules — integer bitset ops and
  /// stored doubles, so the rebuilt state is bit-identical.
  std::optional<search::SubgroupList> list_;
  std::vector<ListMineResult> list_history_;
  std::shared_ptr<search::ThreadPool> thread_pool_;
  std::chrono::steady_clock::time_point last_activity_ =
      std::chrono::steady_clock::now();
};

}  // namespace sisd::core

#endif  // SISD_CORE_SESSION_HPP_
