file(REMOVE_RECURSE
  "CMakeFiles/sisd_core.dir/export.cpp.o"
  "CMakeFiles/sisd_core.dir/export.cpp.o.d"
  "CMakeFiles/sisd_core.dir/miner.cpp.o"
  "CMakeFiles/sisd_core.dir/miner.cpp.o.d"
  "CMakeFiles/sisd_core.dir/session.cpp.o"
  "CMakeFiles/sisd_core.dir/session.cpp.o.d"
  "CMakeFiles/sisd_core.dir/session_io.cpp.o"
  "CMakeFiles/sisd_core.dir/session_io.cpp.o.d"
  "libsisd_core.a"
  "libsisd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
