# Empty dependencies file for sisd_core.
# This may be replaced when dependencies are built.
