file(REMOVE_RECURSE
  "libsisd_core.a"
)
