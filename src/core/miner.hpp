/// \file miner.hpp
/// \brief The public facade: iterative subjectively-interesting subgroup
/// discovery on real-valued targets.
///
/// One `IterativeMiner` owns a dataset, the evolving background model and
/// the search machinery. Each call to `MineNext()` performs one iteration of
/// the paper's loop:
///   1. beam search for the location pattern maximizing SI (Eq. 14);
///   2. assimilate the location pattern into the background model (Thm. 1);
///   3. optionally find the most interesting spread direction for that
///      subgroup (Eq. 21, sphere gradient ascent or 2-sparse pair sweep)
///      and assimilate the spread pattern (Thm. 2);
///   4. return everything found, leaving the model ready for the next
///      iteration (non-redundancy falls out of the updated model).

#ifndef SISD_CORE_MINER_HPP_
#define SISD_CORE_MINER_HPP_

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/table.hpp"
#include "model/assimilator.hpp"
#include "model/background_model.hpp"
#include "optimize/sphere_optimizer.hpp"
#include "pattern/patterns.hpp"
#include "search/beam_search.hpp"
#include "search/condition_pool.hpp"
#include "si/interestingness.hpp"

namespace sisd::core {

/// \brief Which pattern types an iteration should produce.
enum class PatternMix {
  kLocationOnly,       ///< location pattern per iteration (e.g. mammals §III-B)
  kLocationAndSpread,  ///< location + spread per iteration (§III-A, C, D)
};

/// \brief Everything configurable about the miner. Defaults reproduce the
/// paper's settings (§III: beam width 40, depth 4, 4 split points, top-150,
/// gamma = 0.1, eta = 1).
struct MinerConfig {
  search::SearchConfig search;
  si::DescriptionLengthParams dl;
  PatternMix mix = PatternMix::kLocationAndSpread;
  /// 0 = dense spread direction; 2 = the §III-C pair sweep (2-sparse w).
  int spread_sparsity = 0;
  optimize::SphereOptimizerConfig spread_optimizer;
  /// Prior mean/covariance; empty -> empirical values (the paper's setup).
  std::optional<linalg::Vector> prior_mean;
  std::optional<linalg::Matrix> prior_covariance;
  /// Ridge added to an empirical prior covariance (keeps it SPD).
  double prior_ridge = 1e-8;
};

/// \brief A fully scored location pattern.
struct ScoredLocationPattern {
  pattern::LocationPattern pattern;
  si::LocationScore score;

  /// Renders e.g. "a3 = '1' (n=40, SI=48.35)".
  std::string Describe(const data::DataTable& table) const;
};

/// \brief A fully scored spread pattern.
struct ScoredSpreadPattern {
  pattern::SpreadPattern pattern;
  si::SpreadScore score;

  std::string Describe(const data::DataTable& table) const;
};

/// \brief Output of one mining iteration.
struct IterationResult {
  ScoredLocationPattern location;
  std::optional<ScoredSpreadPattern> spread;
  /// The full ranked list from the beam search (top-k subgroups by SI),
  /// useful for Table-I-style inspection.
  std::vector<ScoredLocationPattern> ranked;
  /// Search diagnostics.
  size_t candidates_evaluated = 0;
  bool hit_time_budget = false;
};

/// \brief Iterative subjectively-interesting subgroup miner.
class IterativeMiner {
 public:
  /// Builds a miner over `dataset` (kept by reference; must outlive the
  /// miner). Fails when the dataset is inconsistent or the prior covariance
  /// is not SPD.
  static Result<IterativeMiner> Create(const data::Dataset& dataset,
                                       MinerConfig config);

  /// Runs one mining iteration and assimilates what it finds.
  Result<IterationResult> MineNext();

  /// Runs `count` iterations, stopping early on search failure.
  Result<std::vector<IterationResult>> MineIterations(int count);

  /// The current background model.
  const model::BackgroundModel& model() const {
    return assimilator_.model();
  }

  /// The assimilator (constraint registry), e.g. for refit timing studies.
  model::PatternAssimilator* mutable_assimilator() { return &assimilator_; }

  /// Scores an arbitrary intention as a location pattern under the *current*
  /// model (used to track SI of earlier patterns across iterations, as in
  /// Table I). Fails on empty extensions.
  Result<ScoredLocationPattern> ScoreIntention(
      const pattern::Intention& intention) const;

  /// Scores a spread pattern (direction `w`) for an arbitrary intention
  /// under the current model.
  Result<ScoredSpreadPattern> ScoreSpreadForIntention(
      const pattern::Intention& intention, const linalg::Vector& w) const;

  /// Finds the best spread direction for a given subgroup under the current
  /// model (without assimilating anything).
  Result<ScoredSpreadPattern> FindSpreadPattern(
      const pattern::Subgroup& subgroup) const;

  /// The dataset being mined.
  const data::Dataset& dataset() const { return *dataset_; }

  /// The condition pool (for diagnostics and ablation benches).
  const search::ConditionPool& condition_pool() const { return pool_; }

  /// History of all iterations run so far.
  const std::vector<IterationResult>& history() const { return history_; }

 private:
  IterativeMiner(const data::Dataset* dataset, MinerConfig config,
                 search::ConditionPool pool,
                 model::PatternAssimilator assimilator)
      : dataset_(dataset),
        config_(std::move(config)),
        pool_(std::move(pool)),
        assimilator_(std::move(assimilator)) {}

  const data::Dataset* dataset_;
  MinerConfig config_;
  search::ConditionPool pool_;
  model::PatternAssimilator assimilator_;
  std::vector<IterationResult> history_;
};

}  // namespace sisd::core

#endif  // SISD_CORE_MINER_HPP_
