/// \file miner.hpp
/// \brief Legacy non-owning facade over `MiningSession` (core/session.hpp).
///
/// `IterativeMiner` predates the persistent-session architecture and keeps
/// a *reference* to a caller-owned dataset. It remains for callers that
/// manage dataset lifetime themselves (benches, examples); new code should
/// use `MiningSession`, which owns its dataset and adds Save/Restore.
///
/// ### Lifetime contract (the reason this class is soft-deprecated)
/// `Create(dataset, ...)` borrows `dataset`: the referenced object MUST
/// outlive the miner and every copy/move of it. Destroying or moving the
/// dataset while a miner points at it is undefined behaviour — the classic
/// dangling-reference trap `MiningSession` exists to eliminate. In
/// particular, never pass a temporary:
/// \code
///   // WRONG: the temporary Dataset dies at the end of the statement.
///   auto miner = IterativeMiner::Create(MakeDataset(), config);
///   // RIGHT: sessions take ownership.
///   auto session = MiningSession::Create(MakeDataset(), config);
/// \endcode

#ifndef SISD_CORE_MINER_HPP_
#define SISD_CORE_MINER_HPP_

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/session.hpp"

namespace sisd::core {

/// \brief Iterative subjectively-interesting subgroup miner over a
/// borrowed dataset. Prefer `MiningSession` (owning, save/restorable).
class IterativeMiner {
 public:
  /// Builds a miner over `dataset`, which is kept BY REFERENCE and must
  /// outlive the miner (see the lifetime contract in the file comment).
  /// Fails when the dataset is inconsistent or the prior covariance is not
  /// SPD.
  static Result<IterativeMiner> Create(const data::Dataset& dataset,
                                       MinerConfig config);

  /// Runs one mining iteration and assimilates what it finds.
  Result<IterationResult> MineNext() { return session_.MineNext(); }

  /// Runs `count` iterations, stopping early on search failure.
  Result<std::vector<IterationResult>> MineIterations(int count) {
    return session_.MineIterations(count);
  }

  /// The current background model.
  const model::BackgroundModel& model() const { return session_.model(); }

  /// The assimilator (constraint registry), e.g. for refit timing studies.
  model::PatternAssimilator* mutable_assimilator() {
    return session_.mutable_assimilator();
  }

  /// Scores an arbitrary intention as a location pattern under the *current*
  /// model (used to track SI of earlier patterns across iterations, as in
  /// Table I). Fails on empty extensions.
  Result<ScoredLocationPattern> ScoreIntention(
      const pattern::Intention& intention) const {
    return session_.ScoreIntention(intention);
  }

  /// Scores a spread pattern (direction `w`) for an arbitrary intention
  /// under the current model.
  Result<ScoredSpreadPattern> ScoreSpreadForIntention(
      const pattern::Intention& intention, const linalg::Vector& w) const {
    return session_.ScoreSpreadForIntention(intention, w);
  }

  /// Finds the best spread direction for a given subgroup under the current
  /// model (without assimilating anything).
  Result<ScoredSpreadPattern> FindSpreadPattern(
      const pattern::Subgroup& subgroup) const {
    return session_.FindSpreadPattern(subgroup);
  }

  /// The dataset being mined (the borrowed reference).
  const data::Dataset& dataset() const { return session_.dataset(); }

  /// The condition pool (for diagnostics and ablation benches).
  const search::ConditionPool& condition_pool() const {
    return session_.condition_pool();
  }

  /// History of all iterations run so far.
  const std::vector<IterationResult>& history() const {
    return session_.history();
  }

  /// The underlying session (owning adapter internals; exposed so callers
  /// can e.g. `Save` a legacy miner's state — the snapshot embeds a copy of
  /// the dataset, so restoring it yields a self-contained MiningSession).
  const MiningSession& session() const { return session_; }
  MiningSession* mutable_session() { return &session_; }

 private:
  explicit IterativeMiner(MiningSession session)
      : session_(std::move(session)) {}

  MiningSession session_;
};

}  // namespace sisd::core

#endif  // SISD_CORE_MINER_HPP_
