#include "core/miner.hpp"

namespace sisd::core {

Result<IterativeMiner> IterativeMiner::Create(const data::Dataset& dataset,
                                              MinerConfig config) {
  // Non-owning handle: the caller guarantees `dataset` outlives the miner
  // (see the lifetime contract in the header). The aliasing shared_ptr
  // carries no control block side effects — its deleter is a no-op.
  std::shared_ptr<const data::Dataset> borrowed(
      std::shared_ptr<const data::Dataset>(), &dataset);
  Result<MiningSession> session =
      MiningSession::Create(std::move(borrowed), std::move(config));
  if (!session.ok()) return session.status();
  return IterativeMiner(std::move(session).MoveValue());
}

}  // namespace sisd::core
