#include "core/miner.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "search/si_evaluator.hpp"

namespace sisd::core {

std::string ScoredLocationPattern::Describe(
    const data::DataTable& table) const {
  return StrFormat("%s (n=%zu, IC=%.2f, DL=%.2f, SI=%.2f)",
                   pattern.subgroup.intention.ToString(table).c_str(),
                   pattern.subgroup.Coverage(), score.ic, score.dl, score.si);
}

std::string ScoredSpreadPattern::Describe(const data::DataTable& table) const {
  return StrFormat("%s along w=%s (var=%.4g, IC=%.2f, DL=%.2f, SI=%.2f)",
                   pattern.subgroup.intention.ToString(table).c_str(),
                   pattern.direction.ToString().c_str(), pattern.variance,
                   score.ic, score.dl, score.si);
}

Result<IterativeMiner> IterativeMiner::Create(const data::Dataset& dataset,
                                              MinerConfig config) {
  SISD_RETURN_NOT_OK(dataset.Validate());
  if (dataset.num_rows() < 2) {
    return Status::InvalidArgument("dataset needs at least two rows");
  }

  Result<model::BackgroundModel> model =
      (config.prior_mean.has_value() && config.prior_covariance.has_value())
          ? model::BackgroundModel::Create(dataset.num_rows(),
                                           *config.prior_mean,
                                           *config.prior_covariance)
          : model::BackgroundModel::CreateFromData(dataset.targets,
                                                   config.prior_ridge);
  if (!model.ok()) return model.status();

  search::ConditionPool pool = search::ConditionPool::Build(
      dataset.descriptions, config.search.num_split_points);
  model::PatternAssimilator assimilator(std::move(model).MoveValue());
  return IterativeMiner(&dataset, std::move(config), std::move(pool),
                        std::move(assimilator));
}

Result<IterationResult> IterativeMiner::MineNext() {
  // One batch evaluator per iteration, bound to the current model snapshot:
  // beam search scores candidate batches through it (in parallel when
  // configured), and the final top-k is rescored through the same warmed
  // contexts instead of re-running `si::ScoreLocation` from scratch.
  search::SiLocationEvaluator evaluator(assimilator_.model(),
                                        dataset_->targets, config_.dl);
  search::SearchResult search_result = search::BeamSearch(
      dataset_->descriptions, pool_, config_.search, evaluator);
  if (search_result.top.empty()) {
    return Status::NotFound(
        "beam search found no subgroup satisfying the constraints");
  }

  IterationResult iteration;
  iteration.candidates_evaluated = search_result.num_evaluated;
  iteration.hit_time_budget = search_result.hit_time_budget;

  for (const search::ScoredSubgroup& scored : search_result.top) {
    pattern::Subgroup subgroup;
    subgroup.intention = scored.intention;
    subgroup.extension = scored.extension;
    ScoredLocationPattern entry;
    entry.pattern =
        pattern::LocationPattern::Compute(std::move(subgroup),
                                          dataset_->targets);
    entry.score = evaluator.ScoreSubgroup(
        entry.pattern.subgroup.extension, entry.pattern.mean,
        entry.pattern.subgroup.intention.size());
    iteration.ranked.push_back(std::move(entry));
  }
  iteration.location = iteration.ranked.front();

  // Assimilate the location pattern (Theorem 1).
  SISD_RETURN_NOT_OK(assimilator_.AddLocationPattern(
      iteration.location.pattern.subgroup.extension,
      iteration.location.pattern.mean));

  if (config_.mix == PatternMix::kLocationAndSpread &&
      dataset_->num_targets() >= 1) {
    Result<ScoredSpreadPattern> spread =
        FindSpreadPattern(iteration.location.pattern.subgroup);
    if (!spread.ok()) return spread.status();
    iteration.spread = spread.Value();
    // Assimilate the spread pattern (Theorem 2).
    SISD_RETURN_NOT_OK(assimilator_.AddSpreadPattern(
        iteration.spread->pattern.subgroup.extension,
        iteration.spread->pattern.direction,
        iteration.location.pattern.mean, iteration.spread->pattern.variance));
  }

  history_.push_back(iteration);
  return iteration;
}

Result<std::vector<IterationResult>> IterativeMiner::MineIterations(
    int count) {
  std::vector<IterationResult> results;
  results.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    SISD_ASSIGN_OR_RETURN(iteration, MineNext());
    results.push_back(std::move(iteration));
  }
  return results;
}

Result<ScoredLocationPattern> IterativeMiner::ScoreIntention(
    const pattern::Intention& intention) const {
  pattern::Subgroup subgroup =
      pattern::Subgroup::FromIntention(dataset_->descriptions, intention);
  if (subgroup.extension.empty()) {
    return Status::InvalidArgument("intention matches no rows");
  }
  ScoredLocationPattern out;
  out.pattern =
      pattern::LocationPattern::Compute(std::move(subgroup),
                                        dataset_->targets);
  out.score = si::ScoreLocation(assimilator_.model(),
                                out.pattern.subgroup.extension,
                                out.pattern.mean,
                                out.pattern.subgroup.intention.size(),
                                config_.dl);
  return out;
}

Result<ScoredSpreadPattern> IterativeMiner::ScoreSpreadForIntention(
    const pattern::Intention& intention, const linalg::Vector& w) const {
  pattern::Subgroup subgroup =
      pattern::Subgroup::FromIntention(dataset_->descriptions, intention);
  if (subgroup.extension.empty()) {
    return Status::InvalidArgument("intention matches no rows");
  }
  ScoredSpreadPattern out;
  out.pattern =
      pattern::SpreadPattern::Compute(std::move(subgroup), dataset_->targets,
                                      w);
  out.score = si::ScoreSpread(assimilator_.model(),
                              out.pattern.subgroup.extension,
                              out.pattern.direction, out.pattern.variance,
                              out.pattern.subgroup.intention.size(),
                              config_.dl);
  return out;
}

Result<ScoredSpreadPattern> IterativeMiner::FindSpreadPattern(
    const pattern::Subgroup& subgroup) const {
  if (subgroup.extension.empty()) {
    return Status::InvalidArgument("subgroup has empty extension");
  }
  optimize::SpreadObjective objective(assimilator_.model(),
                                      subgroup.extension, dataset_->targets);
  optimize::SphereOptimum optimum;
  if (config_.spread_sparsity == 2 && dataset_->num_targets() >= 2) {
    optimum = optimize::MaximizePairSparse(objective, nullptr);
  } else {
    optimum = optimize::MaximizeOnSphere(objective, config_.spread_optimizer);
  }

  ScoredSpreadPattern out;
  out.pattern = pattern::SpreadPattern::Compute(subgroup, dataset_->targets,
                                                optimum.direction);
  out.score = si::ScoreSpread(assimilator_.model(), subgroup.extension,
                              out.pattern.direction, out.pattern.variance,
                              subgroup.intention.size(), config_.dl);
  return out;
}

}  // namespace sisd::core
