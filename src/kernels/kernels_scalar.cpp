/// \file kernels_scalar.cpp
/// \brief Portable reference implementation of the kernel family.
///
/// The floating-point kernels mirror the AVX2 lane structure *literally*
/// (see the lane contract in kernels.hpp): four 4-lane accumulators fed
/// round-robin by 4-bit mask nibbles, each lane accumulated in the
/// subtraction form `acc - ((-v) & lanemask)` so masked-off lanes are a
/// bitwise no-op, and a fixed pairwise reduction. The mask bits enter as
/// integer AND masks on the value's bit pattern, not as branches: candidate
/// masks change every call in the batch engine, and per-group branches on
/// them mispredict badly. This file is compiled with -ffp-contract=off so
/// the sum-of-squares multiply+subtract cannot be fused into an FMA here
/// while staying separate operations in the AVX2 unit (or vice versa).

#include <bit>
#include <cstddef>
#include <cstdint>

#include "kernels/kernels.hpp"

namespace sisd::kernels {
namespace {

inline size_t Popcount64(uint64_t x) {
  return static_cast<size_t>(std::popcount(x));
}

constexpr uint64_t kSignBit = uint64_t{1} << 63;

size_t ScalarCountAnd2(const uint64_t* a, const uint64_t* b,
                       size_t num_blocks) {
  size_t count = 0;
  for (size_t i = 0; i < num_blocks; ++i) count += Popcount64(a[i] & b[i]);
  return count;
}

size_t ScalarCountAnd3(const uint64_t* a, const uint64_t* b,
                       const uint64_t* c, size_t num_blocks) {
  size_t count = 0;
  for (size_t i = 0; i < num_blocks; ++i) {
    count += Popcount64(a[i] & b[i] & c[i]);
  }
  return count;
}

size_t ScalarAndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                     size_t num_blocks) {
  size_t count = 0;
  for (size_t i = 0; i < num_blocks; ++i) {
    const uint64_t block = a[i] & b[i];
    out[i] = block;
    count += Popcount64(block);
  }
  return count;
}

size_t ScalarOrInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                    size_t num_blocks) {
  size_t count = 0;
  for (size_t i = 0; i < num_blocks; ++i) {
    const uint64_t block = a[i] | b[i];
    out[i] = block;
    count += Popcount64(block);
  }
  return count;
}

/// Final reduction of the lane contract: lane-wise (a0+a1)+(a2+a3), then
/// (s0+s2)+(s1+s3). `acc[(g & 3) * 4 + lane]` holds accumulator g&3, lane j.
inline double ReduceLanes(const double acc[16]) {
  double s[4];
  for (int j = 0; j < 4; ++j) {
    s[j] = (acc[j] + acc[4 + j]) + (acc[8 + j] + acc[12 + j]);
  }
  return (s[0] + s[2]) + (s[1] + s[3]);
}

/// Branchlessly adds one full-width 64-row block into the 16 contract
/// lanes: every value is read and AND-masked down to +0.0 when its bit is
/// clear, so there is no data-dependent control flow. Only safe for blocks
/// whose 64 values are all in bounds (every block but the last).
inline void AccumulateSumBlockFull(const double* v, uint64_t m,
                                   double acc[16]) {
  for (size_t g = 0; g < 16; ++g) {
    double* lane = acc + ((g & 3) << 2);
    const double* vg = v + (g << 2);
    const uint64_t nib = (m >> (4 * g)) & 0xFull;
    for (size_t j = 0; j < 4; ++j) {
      const uint64_t keep = uint64_t{0} - ((nib >> j) & 1u);
      const double nx =
          std::bit_cast<double>((std::bit_cast<uint64_t>(vg[j]) ^ kSignBit) &
                                keep);
      lane[j] = lane[j] - nx;
    }
  }
}

/// Tail-block variant: lanes whose bit is clear are never read (the final
/// block may cover rows past the end of `values`). Skipping them is exact —
/// a masked lane is the bitwise identity under the subtraction form.
inline void AccumulateSumBlockTail(const double* v, uint64_t m,
                                   double acc[16]) {
  for (size_t g = 0; g < 16; ++g) {
    const unsigned nib = static_cast<unsigned>((m >> (4 * g)) & 0xFull);
    if (nib == 0) continue;
    double* lane = acc + ((g & 3) << 2);
    const double* vg = v + (g << 2);
    for (size_t j = 0; j < 4; ++j) {
      if (nib & (1u << j)) lane[j] = lane[j] - (-vg[j]);
    }
  }
}

double ScalarMaskedSum(const double* values, const uint64_t* mask,
                       size_t num_blocks) {
  double acc[16] = {0.0};
  if (num_blocks == 0) return 0.0;
  for (size_t i = 0; i + 1 < num_blocks; ++i) {
    const uint64_t m = mask[i];
    if (m == 0) continue;
    AccumulateSumBlockFull(values + (i << 6), m, acc);
  }
  AccumulateSumBlockTail(values + ((num_blocks - 1) << 6),
                         mask[num_blocks - 1], acc);
  return ReduceLanes(acc);
}

double ScalarMaskedSumAnd(const double* values, const uint64_t* a,
                          const uint64_t* b, size_t num_blocks) {
  double acc[16] = {0.0};
  if (num_blocks == 0) return 0.0;
  for (size_t i = 0; i + 1 < num_blocks; ++i) {
    const uint64_t m = a[i] & b[i];
    if (m == 0) continue;
    AccumulateSumBlockFull(values + (i << 6), m, acc);
  }
  AccumulateSumBlockTail(values + ((num_blocks - 1) << 6),
                         a[num_blocks - 1] & b[num_blocks - 1], acc);
  return ReduceLanes(acc);
}

/// Branchless full-width moments block (see AccumulateSumBlockFull): the
/// squares side subtracts `nx * x` = -(v*v), which is +0.0 — an exact
/// no-op — for masked lanes.
inline void AccumulateMomentsBlockFull(const double* v, uint64_t m,
                                       double acc_sum[16],
                                       double acc_sq[16]) {
  for (size_t g = 0; g < 16; ++g) {
    double* lane_sum = acc_sum + ((g & 3) << 2);
    double* lane_sq = acc_sq + ((g & 3) << 2);
    const double* vg = v + (g << 2);
    const uint64_t nib = (m >> (4 * g)) & 0xFull;
    for (size_t j = 0; j < 4; ++j) {
      const uint64_t keep = uint64_t{0} - ((nib >> j) & 1u);
      const uint64_t bits = std::bit_cast<uint64_t>(vg[j]);
      const double x = std::bit_cast<double>(bits & keep);
      const double nx = std::bit_cast<double>((bits ^ kSignBit) & keep);
      lane_sum[j] = lane_sum[j] - nx;
      lane_sq[j] = lane_sq[j] - nx * x;
    }
  }
}

inline void AccumulateMomentsBlockTail(const double* v, uint64_t m,
                                       double acc_sum[16],
                                       double acc_sq[16]) {
  for (size_t g = 0; g < 16; ++g) {
    const unsigned nib = static_cast<unsigned>((m >> (4 * g)) & 0xFull);
    if (nib == 0) continue;
    double* lane_sum = acc_sum + ((g & 3) << 2);
    double* lane_sq = acc_sq + ((g & 3) << 2);
    const double* vg = v + (g << 2);
    for (size_t j = 0; j < 4; ++j) {
      if (nib & (1u << j)) {
        const double x = vg[j];
        const double nx = -x;
        lane_sum[j] = lane_sum[j] - nx;
        lane_sq[j] = lane_sq[j] - nx * x;
      }
    }
  }
}

MaskedMoments ScalarMaskedMomentsAnd(const double* values, const uint64_t* a,
                                     const uint64_t* b, size_t num_blocks) {
  double acc_sum[16] = {0.0};
  double acc_sq[16] = {0.0};
  MaskedMoments out;
  if (num_blocks == 0) return out;
  for (size_t i = 0; i + 1 < num_blocks; ++i) {
    const uint64_t m = a[i] & b[i];
    if (m == 0) continue;
    out.count += Popcount64(m);
    AccumulateMomentsBlockFull(values + (i << 6), m, acc_sum, acc_sq);
  }
  const uint64_t tail = a[num_blocks - 1] & b[num_blocks - 1];
  out.count += Popcount64(tail);
  AccumulateMomentsBlockTail(values + ((num_blocks - 1) << 6), tail, acc_sum,
                             acc_sq);
  out.sum = ReduceLanes(acc_sum);
  out.sum_squares = ReduceLanes(acc_sq);
  return out;
}

}  // namespace

const KernelTable& ScalarKernels() {
  static constexpr KernelTable table = {
      "scalar",         ScalarCountAnd2, ScalarCountAnd3,
      ScalarAndInto,    ScalarOrInto,    ScalarMaskedSum,
      ScalarMaskedSumAnd, ScalarMaskedMomentsAnd,
  };
  return table;
}

}  // namespace sisd::kernels
