/// \file kernels.hpp
/// \brief Flat C-style SIMD kernels behind the candidate-scoring hot paths.
///
/// The batch evaluation engine spends nearly all of its time in a handful of
/// tight loops over 64-bit bitset blocks and the contiguous dy=1 target
/// column: masked popcounts (candidate coverage, per-group counts), fused
/// intersect+count, and masked target sums (subgroup means). This module
/// lifts those loops into a flat kernel family — in the style of gnumeric's
/// `range_*` functions — with two interchangeable implementations:
///
///   - a portable scalar implementation (always available), and
///   - an AVX2 implementation (x86-64, selected at runtime via CPUID).
///
/// ## Exact-equality contract
///
/// Every kernel produces *bit-identical* results across implementations, so
/// dispatch can never leak into mining output:
///
///   - Integer kernels (popcounts, intersect/union) are trivially exact.
///   - Floating-point kernels follow one fixed accumulation structure, the
///     *lane contract*, that both implementations honor literally:
///       * a 64-row block is processed as 16 groups of 4 lanes; group `g`
///         covers bits `4g..4g+3` of the block's mask word;
///       * there are four 4-lane accumulators; group `g` accumulates into
///         accumulator `g & 3`, lane-wise;
///       * a set lane contributes its value through the *subtraction form*:
///         with `x = bits(v) & lanemask` and `nx = bits(-v) & lanemask`, the
///         sum accumulator takes `acc - nx` and the squares accumulator
///         `acc - (nx * x)`. A masked-off lane yields `nx = x = +0.0`, and
///         `acc - (+0.0)` is the bitwise *identity* for every IEEE double
///         (including `-0.0`, which plain `acc + 0.0` would flip). Masked
///         lanes are therefore unobservable, which makes the contract
///         *skip-invariant*: an implementation may skip all-zero blocks or
///         groups — or process them branchlessly — without changing a bit
///         of the result;
///       * the final reduction is `s[j] = (a0[j]+a1[j]) + (a2[j]+a3[j])`
///         lane-wise, then `(s[0]+s[2]) + (s[1]+s[3])`;
///       * squares are computed as one IEEE multiply then subtracted (both
///         translation units are built with `-ffp-contract=off` so the
///         compiler cannot fuse a multiply-add on one side only).
///     Since IEEE-754 operations are deterministic, identical operation
///     order implies identical bits. `kernel_parity_test` enforces this
///     differentially, including ±0.0 and denormal inputs.
///
/// Inside a block, both implementations are branchless in the mask data
/// (no per-group skip tests; the only data-dependent branches left are one
/// whole-block zero skip and the partial final block): candidate masks in
/// the batch engine change every item, so per-group branches mispredict
/// roughly once per group and cost far more than the work they skip
/// (measured ~3.5× on the candidate-eval hot loop vs the same kernel's
/// steady-state microbenchmark).
///
/// ## Preconditions
///
/// Mask words must have their tail bits (past the universe size) zeroed —
/// `pattern::Extension` maintains exactly this invariant (and checks it with
/// `SISD_DCHECK` on every mutation). `values` must hold one double per row,
/// 64 per block, except the final block which may be partial: every block
/// but the last is read at full width regardless of its mask, while in the
/// last block rows whose mask bit is clear are never read.
///
/// ## Dispatch policy
///
/// The active implementation is resolved once, on first use: the
/// `SISD_KERNELS` environment variable (`scalar` or `avx2`) wins; otherwise
/// AVX2 is used when the CPU supports it, scalar else. Requesting `avx2` on
/// hardware without it falls back to scalar with a warning on stderr. Tests
/// may re-pin the choice with `SetActiveIsaForTesting`.

#ifndef SISD_KERNELS_KERNELS_HPP_
#define SISD_KERNELS_KERNELS_HPP_

#include <cstddef>
#include <cstdint>

namespace sisd::kernels {

/// \brief Result of the fused count+sum+sum-of-squares kernel.
struct MaskedMoments {
  size_t count = 0;        ///< popcount of the combined mask
  double sum = 0.0;        ///< sum of selected values (lane contract)
  double sum_squares = 0.0;  ///< sum of squared selected values
};

/// \brief One implementation of the kernel family (function-pointer table).
///
/// All functions take block counts, not row counts: `num_blocks` 64-bit mask
/// words cover `64 * num_blocks` rows (the caller guarantees masked tails).
struct KernelTable {
  const char* name;  ///< "scalar" or "avx2"

  /// Popcount of `a & b` over `num_blocks` words.
  size_t (*count_and2)(const uint64_t* a, const uint64_t* b,
                       size_t num_blocks);
  /// Popcount of `a & b & c` over `num_blocks` words (three-way fused).
  size_t (*count_and3)(const uint64_t* a, const uint64_t* b,
                       const uint64_t* c, size_t num_blocks);
  /// `out[i] = a[i] & b[i]`; returns the popcount of the result.
  size_t (*and_into)(const uint64_t* a, const uint64_t* b, uint64_t* out,
                     size_t num_blocks);
  /// `out[i] = a[i] | b[i]`; returns the popcount of the result.
  size_t (*or_into)(const uint64_t* a, const uint64_t* b, uint64_t* out,
                    size_t num_blocks);
  /// Sum of `values[i]` over rows with `mask` bit set (lane contract).
  double (*masked_sum)(const double* values, const uint64_t* mask,
                       size_t num_blocks);
  /// Sum of `values[i]` over rows of `a & b` (lane contract). Bit-identical
  /// to `masked_sum` on the materialized intersection.
  double (*masked_sum_and)(const double* values, const uint64_t* a,
                           const uint64_t* b, size_t num_blocks);
  /// Fused count + sum + sum-of-squares over rows of `a & b`, accumulators
  /// kept in registers. `sum` is bit-identical to `masked_sum_and`.
  MaskedMoments (*masked_moments_and)(const double* values, const uint64_t* a,
                                      const uint64_t* b, size_t num_blocks);
};

/// \brief Implementation selector.
enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
};

/// Human-readable ISA name ("scalar" / "avx2").
const char* IsaName(Isa isa);

/// True when the running CPU supports AVX2 (and the library was compiled
/// with an AVX2-capable compiler).
bool CpuSupportsAvx2();

/// The always-available portable implementation.
const KernelTable& ScalarKernels();

/// The AVX2 implementation, or nullptr when unavailable (non-x86 build or
/// compiler without `-mavx2`). Callers must still gate on
/// `CpuSupportsAvx2()` before executing it.
const KernelTable* Avx2KernelsOrNull();

/// The implementation the process dispatched to (env override + CPUID).
Isa ActiveIsa();

/// The active kernel table (resolved once, lock-free afterwards).
const KernelTable& Active();

/// Re-pins the active implementation. Test-only: the production choice is
/// made once at first use and kept for the process lifetime. Dies when the
/// requested ISA is unavailable on this host.
void SetActiveIsaForTesting(Isa isa);

/// \name Dispatched convenience wrappers
/// @{
inline size_t CountAnd2(const uint64_t* a, const uint64_t* b,
                        size_t num_blocks) {
  return Active().count_and2(a, b, num_blocks);
}
inline size_t CountAnd3(const uint64_t* a, const uint64_t* b,
                        const uint64_t* c, size_t num_blocks) {
  return Active().count_and3(a, b, c, num_blocks);
}
inline size_t AndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                      size_t num_blocks) {
  return Active().and_into(a, b, out, num_blocks);
}
inline size_t OrInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                     size_t num_blocks) {
  return Active().or_into(a, b, out, num_blocks);
}
inline double MaskedSum(const double* values, const uint64_t* mask,
                        size_t num_blocks) {
  return Active().masked_sum(values, mask, num_blocks);
}
inline double MaskedSumAnd(const double* values, const uint64_t* a,
                           const uint64_t* b, size_t num_blocks) {
  return Active().masked_sum_and(values, a, b, num_blocks);
}
inline MaskedMoments MaskedMomentsAnd(const double* values, const uint64_t* a,
                                      const uint64_t* b, size_t num_blocks) {
  return Active().masked_moments_and(values, a, b, num_blocks);
}
/// @}

}  // namespace sisd::kernels

#endif  // SISD_KERNELS_KERNELS_HPP_
