/// \file kernels_avx2.cpp
/// \brief AVX2 implementation of the kernel family (x86-64 only).
///
/// Compiled with -mavx2 (this translation unit only) and -ffp-contract=off;
/// dispatch guarantees these functions never execute on hardware without
/// AVX2. The floating-point kernels implement the lane contract documented
/// in kernels.hpp: 4-double vector accumulators fed round-robin by mask
/// nibbles, each group accumulated in the subtraction form
/// `acc - ((-v) & lanemask)` so masked lanes are a bitwise no-op. The body
/// is branchless in the mask data — full-width loads AND-masked per lane —
/// except for the final block, which may be partial and is read with
/// vmaskmovpd (never touches rows whose bit is clear).
///
/// Popcounts use the classic vpshufb nibble-LUT reduction (4 blocks = 256
/// bits per step) with vpsadbw accumulating byte counts into 64-bit lanes —
/// exact integer arithmetic, no parity concerns.

#include "kernels/kernels.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace sisd::kernels {
namespace {

inline size_t Popcount64(uint64_t x) {
  return static_cast<size_t>(std::popcount(x));
}

/// Lane-mask lookup: entry `nib` has lane j = all-ones iff bit j of nib.
alignas(32) constexpr int64_t kNibbleLaneMask[16][4] = {
    {0, 0, 0, 0},    {-1, 0, 0, 0},   {0, -1, 0, 0},   {-1, -1, 0, 0},
    {0, 0, -1, 0},   {-1, 0, -1, 0},  {0, -1, -1, 0},  {-1, -1, -1, 0},
    {0, 0, 0, -1},   {-1, 0, 0, -1},  {0, -1, 0, -1},  {-1, -1, 0, -1},
    {0, 0, -1, -1},  {-1, 0, -1, -1}, {0, -1, -1, -1}, {-1, -1, -1, -1},
};

inline __m256i LaneMask(unsigned nib) {
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kNibbleLaneMask[nib]));
}

inline __m256d LaneMaskPd(unsigned nib) {
  return _mm256_castsi256_pd(LaneMask(nib));
}

/// Lane-contract reduction: (a0+a1)+(a2+a3) lane-wise, then (s0+s2)+(s1+s3).
inline double ReduceLanes(__m256d a0, __m256d a1, __m256d a2, __m256d a3) {
  const __m256d s =
      _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d t = _mm_add_pd(lo, hi);  // (s0+s2, s1+s3)
  return _mm_cvtsd_f64(_mm_add_sd(t, _mm_unpackhi_pd(t, t)));
}

/// Per-byte popcount of a 256-bit vector, reduced into 4 uint64 lanes.
inline __m256i PopcountBytes(__m256i x) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(x, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(x, 4), low_mask);
  const __m256i cnt =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline size_t ReduceCount(__m256i acc) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

inline __m256i Load256(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

size_t Avx2CountAnd2(const uint64_t* a, const uint64_t* b,
                     size_t num_blocks) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= num_blocks; i += 4) {
    const __m256i x = _mm256_and_si256(Load256(a + i), Load256(b + i));
    acc = _mm256_add_epi64(acc, PopcountBytes(x));
  }
  size_t count = ReduceCount(acc);
  for (; i < num_blocks; ++i) count += Popcount64(a[i] & b[i]);
  return count;
}

size_t Avx2CountAnd3(const uint64_t* a, const uint64_t* b, const uint64_t* c,
                     size_t num_blocks) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= num_blocks; i += 4) {
    const __m256i x = _mm256_and_si256(
        _mm256_and_si256(Load256(a + i), Load256(b + i)), Load256(c + i));
    acc = _mm256_add_epi64(acc, PopcountBytes(x));
  }
  size_t count = ReduceCount(acc);
  for (; i < num_blocks; ++i) count += Popcount64(a[i] & b[i] & c[i]);
  return count;
}

size_t Avx2AndInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                   size_t num_blocks) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= num_blocks; i += 4) {
    const __m256i x = _mm256_and_si256(Load256(a + i), Load256(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
    acc = _mm256_add_epi64(acc, PopcountBytes(x));
  }
  size_t count = ReduceCount(acc);
  for (; i < num_blocks; ++i) {
    const uint64_t block = a[i] & b[i];
    out[i] = block;
    count += Popcount64(block);
  }
  return count;
}

size_t Avx2OrInto(const uint64_t* a, const uint64_t* b, uint64_t* out,
                  size_t num_blocks) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= num_blocks; i += 4) {
    const __m256i x = _mm256_or_si256(Load256(a + i), Load256(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
    acc = _mm256_add_epi64(acc, PopcountBytes(x));
  }
  size_t count = ReduceCount(acc);
  for (; i < num_blocks; ++i) {
    const uint64_t block = a[i] | b[i];
    out[i] = block;
    count += Popcount64(block);
  }
  return count;
}

const __m256d kSignBit = _mm256_set1_pd(-0.0);

/// Branchlessly accumulates one full-width block: every group is a plain
/// 32-byte load whose sign-flipped value is ANDed down to +0.0 in masked
/// lanes, then subtracted (a no-op for those lanes). Only safe when the
/// block's 64 values are all in bounds (every block but the last).
inline void AccumulateSumBlockFull(const double* v, uint64_t m,
                                   __m256d acc[4]) {
  for (size_t g = 0; g < 16; ++g) {
    const unsigned nib = static_cast<unsigned>((m >> (4 * g)) & 0xFull);
    const __m256d x = _mm256_loadu_pd(v + (g << 2));
    const __m256d nx =
        _mm256_and_pd(_mm256_xor_pd(x, kSignBit), LaneMaskPd(nib));
    acc[g & 3] = _mm256_sub_pd(acc[g & 3], nx);
  }
}

/// Tail-block variant: vmaskmovpd never reads lanes whose bit is clear, so
/// a partial final block is safe at full register width. The masked-lane
/// zero fill feeds the same subtraction form, so results match the
/// full-width path bit-for-bit.
inline void AccumulateSumBlockTail(const double* v, uint64_t m,
                                   __m256d acc[4]) {
  for (size_t g = 0; g < 16; ++g) {
    const unsigned nib = static_cast<unsigned>((m >> (4 * g)) & 0xFull);
    if (nib == 0) continue;
    const __m256d x = _mm256_maskload_pd(v + (g << 2), LaneMask(nib));
    const __m256d nx =
        _mm256_and_pd(_mm256_xor_pd(x, kSignBit), LaneMaskPd(nib));
    acc[g & 3] = _mm256_sub_pd(acc[g & 3], nx);
  }
}

double Avx2MaskedSum(const double* values, const uint64_t* mask,
                     size_t num_blocks) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  if (num_blocks == 0) return 0.0;
  for (size_t i = 0; i + 1 < num_blocks; ++i) {
    const uint64_t m = mask[i];
    if (m == 0) continue;
    AccumulateSumBlockFull(values + (i << 6), m, acc);
  }
  AccumulateSumBlockTail(values + ((num_blocks - 1) << 6),
                         mask[num_blocks - 1], acc);
  return ReduceLanes(acc[0], acc[1], acc[2], acc[3]);
}

double Avx2MaskedSumAnd(const double* values, const uint64_t* a,
                        const uint64_t* b, size_t num_blocks) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  if (num_blocks == 0) return 0.0;
  for (size_t i = 0; i + 1 < num_blocks; ++i) {
    const uint64_t m = a[i] & b[i];
    if (m == 0) continue;
    AccumulateSumBlockFull(values + (i << 6), m, acc);
  }
  AccumulateSumBlockTail(values + ((num_blocks - 1) << 6),
                         a[num_blocks - 1] & b[num_blocks - 1], acc);
  return ReduceLanes(acc[0], acc[1], acc[2], acc[3]);
}

inline void AccumulateMomentsBlockFull(const double* v, uint64_t m,
                                       __m256d sum[4], __m256d sq[4]) {
  for (size_t g = 0; g < 16; ++g) {
    const unsigned nib = static_cast<unsigned>((m >> (4 * g)) & 0xFull);
    const __m256d lm = LaneMaskPd(nib);
    const __m256d raw = _mm256_loadu_pd(v + (g << 2));
    const __m256d x = _mm256_and_pd(raw, lm);
    const __m256d nx = _mm256_and_pd(_mm256_xor_pd(raw, kSignBit), lm);
    sum[g & 3] = _mm256_sub_pd(sum[g & 3], nx);
    sq[g & 3] = _mm256_sub_pd(sq[g & 3], _mm256_mul_pd(nx, x));
  }
}

inline void AccumulateMomentsBlockTail(const double* v, uint64_t m,
                                       __m256d sum[4], __m256d sq[4]) {
  for (size_t g = 0; g < 16; ++g) {
    const unsigned nib = static_cast<unsigned>((m >> (4 * g)) & 0xFull);
    if (nib == 0) continue;
    const __m256d lm = LaneMaskPd(nib);
    const __m256d x = _mm256_maskload_pd(v + (g << 2), LaneMask(nib));
    const __m256d nx = _mm256_and_pd(_mm256_xor_pd(x, kSignBit), lm);
    sum[g & 3] = _mm256_sub_pd(sum[g & 3], nx);
    sq[g & 3] = _mm256_sub_pd(sq[g & 3], _mm256_mul_pd(nx, x));
  }
}

MaskedMoments Avx2MaskedMomentsAnd(const double* values, const uint64_t* a,
                                   const uint64_t* b, size_t num_blocks) {
  __m256d sum[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  __m256d sq[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                   _mm256_setzero_pd(), _mm256_setzero_pd()};
  MaskedMoments out;
  if (num_blocks == 0) return out;
  for (size_t i = 0; i + 1 < num_blocks; ++i) {
    const uint64_t m = a[i] & b[i];
    if (m == 0) continue;
    out.count += Popcount64(m);
    AccumulateMomentsBlockFull(values + (i << 6), m, sum, sq);
  }
  const uint64_t tail = a[num_blocks - 1] & b[num_blocks - 1];
  out.count += Popcount64(tail);
  AccumulateMomentsBlockTail(values + ((num_blocks - 1) << 6), tail, sum, sq);
  out.sum = ReduceLanes(sum[0], sum[1], sum[2], sum[3]);
  out.sum_squares = ReduceLanes(sq[0], sq[1], sq[2], sq[3]);
  return out;
}

}  // namespace

const KernelTable* Avx2KernelsOrNull() {
  static constexpr KernelTable table = {
      "avx2",         Avx2CountAnd2, Avx2CountAnd3,
      Avx2AndInto,    Avx2OrInto,    Avx2MaskedSum,
      Avx2MaskedSumAnd, Avx2MaskedMomentsAnd,
  };
  return &table;
}

}  // namespace sisd::kernels

#else  // !(__AVX2__ && __x86_64__)

namespace sisd::kernels {

const KernelTable* Avx2KernelsOrNull() { return nullptr; }

}  // namespace sisd::kernels

#endif
