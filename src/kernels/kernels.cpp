/// \file kernels.cpp
/// \brief Runtime dispatch for the kernel family.
///
/// Resolution order (decided once, on first use):
///   1. `SISD_KERNELS=scalar|avx2` environment override. Requesting avx2 on
///      a host without it falls back to scalar with a stderr warning
///      (mining output is unaffected either way — the implementations are
///      bit-identical by contract).
///   2. AVX2 when the build carries it and CPUID reports support.
///   3. Scalar otherwise.

#include "kernels/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/status.hpp"

namespace sisd::kernels {

namespace {

bool RuntimeCpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelTable* ResolveFromEnvironment() {
  const char* env = std::getenv("SISD_KERNELS");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return &ScalarKernels();
    if (std::strcmp(env, "avx2") == 0) {
      if (CpuSupportsAvx2()) return Avx2KernelsOrNull();
      std::fprintf(stderr,
                   "sisd: SISD_KERNELS=avx2 requested but AVX2 is "
                   "unavailable on this host; using scalar kernels\n");
      return &ScalarKernels();
    }
    std::fprintf(stderr,
                 "sisd: unknown SISD_KERNELS value '%s' (want scalar|avx2); "
                 "using automatic dispatch\n",
                 env);
  }
  return CpuSupportsAvx2() ? Avx2KernelsOrNull() : &ScalarKernels();
}

std::atomic<const KernelTable*>& ActiveSlot() {
  static std::atomic<const KernelTable*> slot{ResolveFromEnvironment()};
  return slot;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
  return Avx2KernelsOrNull() != nullptr && RuntimeCpuHasAvx2();
}

const KernelTable& Active() {
  return *ActiveSlot().load(std::memory_order_relaxed);
}

Isa ActiveIsa() {
  return &Active() == &ScalarKernels() ? Isa::kScalar : Isa::kAvx2;
}

void SetActiveIsaForTesting(Isa isa) {
  if (isa == Isa::kScalar) {
    ActiveSlot().store(&ScalarKernels(), std::memory_order_relaxed);
    return;
  }
  SISD_CHECK(CpuSupportsAvx2());
  ActiveSlot().store(Avx2KernelsOrNull(), std::memory_order_relaxed);
}

}  // namespace sisd::kernels
