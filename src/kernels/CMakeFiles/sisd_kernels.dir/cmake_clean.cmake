file(REMOVE_RECURSE
  "CMakeFiles/sisd_kernels.dir/kernels.cpp.o"
  "CMakeFiles/sisd_kernels.dir/kernels.cpp.o.d"
  "CMakeFiles/sisd_kernels.dir/kernels_avx2.cpp.o"
  "CMakeFiles/sisd_kernels.dir/kernels_avx2.cpp.o.d"
  "CMakeFiles/sisd_kernels.dir/kernels_scalar.cpp.o"
  "CMakeFiles/sisd_kernels.dir/kernels_scalar.cpp.o.d"
  "libsisd_kernels.a"
  "libsisd_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
