file(REMOVE_RECURSE
  "libsisd_kernels.a"
)
