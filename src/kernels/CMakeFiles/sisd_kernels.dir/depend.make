# Empty dependencies file for sisd_kernels.
# This may be replaced when dependencies are built.
