/// \file append.hpp
/// \brief Row-append construction of dataset versions.
///
/// The catalog's live-dataset path (ROADMAP "append + incremental
/// refresh") builds a *child* dataset from a parent plus new rows. The
/// child shares every existing column chunk with the parent
/// (`Column::WithAppended*`), so constructing it is O(new rows) for the
/// descriptions; only the target matrix is materialized contiguously
/// (the scoring kernels require contiguous target rows, and dy is small).
///
/// Unlike CSV ingest — which silently drops rows with missing fields —
/// every append entry point rejects bad input loudly with
/// `InvalidArgument` and leaves the parent untouched: an analyst
/// appending live rows must find out when a row was malformed, not lose
/// it silently.

#ifndef SISD_DATA_APPEND_HPP_
#define SISD_DATA_APPEND_HPP_

#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/table.hpp"

namespace sisd::data {

/// \brief One heterogeneous cell of an appended row: a number or text.
///
/// Protocol clients send rows as JSON arrays, so numeric cells arrive as
/// numbers (kept bit-exact) and categorical levels as label strings. Text
/// is accepted for numeric columns when it parses as a double.
struct AppendCell {
  static AppendCell Number(double value) {
    AppendCell cell;
    cell.is_number = true;
    cell.number = value;
    return cell;
  }
  static AppendCell Text(std::string value) {
    AppendCell cell;
    cell.text = std::move(value);
    return cell;
  }

  bool is_number = false;
  double number = 0.0;
  std::string text;
};

/// \brief Appends rows given as per-row cell lists under an explicit
/// column-name header.
///
/// `columns` must name every description and target column of `parent`
/// exactly once (any order). Each row must have one cell per column.
/// Numeric/ordinal/target cells accept numbers or numeric text;
/// categorical cells must match or extend the label table (new labels are
/// appended in first-appearance order); binary cells must match one of
/// the two existing labels. Missing-looking text ("", "NA", "nan", "NaN",
/// "?") is rejected unless it is literally a known label of that column.
Result<Dataset> AppendRowsFromCells(
    const Dataset& parent, const std::vector<std::string>& columns,
    const std::vector<std::vector<AppendCell>>& rows);

/// \brief Appends rows parsed from CSV text (header row required; same
/// quoting rules as ingest, but no silent row dropping).
Result<Dataset> AppendRowsFromCsvText(const Dataset& parent,
                                      const std::string& csv_text);

/// \brief Appends every row of `extra` to `parent` (the typed fast path —
/// no string coercion). Schemas must match: identical target names, and
/// description columns with the same names and kinds in the same order.
/// Categorical codes are remapped through labels; unknown categorical
/// labels extend the table, unknown binary labels are rejected.
Result<Dataset> AppendDatasetSlice(const Dataset& parent,
                                   const Dataset& extra);

}  // namespace sisd::data

#endif  // SISD_DATA_APPEND_HPP_
