/// \file table.hpp
/// \brief DataTable (named typed columns) and Dataset (descriptions +
/// real-valued target matrix), the two data containers of the library.

#ifndef SISD_DATA_TABLE_HPP_
#define SISD_DATA_TABLE_HPP_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "data/column.hpp"
#include "linalg/matrix.hpp"

namespace sisd::data {

/// \brief A collection of equally sized named columns.
class DataTable {
 public:
  DataTable() = default;

  /// Appends a column. Fails if the name already exists or the length
  /// disagrees with existing columns.
  Status AddColumn(Column column);

  /// Number of rows (0 when no columns).
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_.front().size();
  }

  /// Number of columns.
  size_t num_columns() const { return columns_.size(); }

  /// Column by position.
  const Column& column(size_t j) const {
    SISD_DCHECK(j < columns_.size());
    return columns_[j];
  }

  /// Column index by name.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Column by name.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// True iff a column with `name` exists.
  bool HasColumn(const std::string& name) const {
    return index_of_.count(name) > 0;
  }

  /// All column names in order.
  std::vector<std::string> ColumnNames() const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_of_;
};

/// \brief A mining problem instance: description attributes plus an
/// `n x dy` matrix of real-valued targets.
struct Dataset {
  /// Description attributes, one column per attribute; `n` rows.
  DataTable descriptions;

  /// Real-valued targets, shape `n x dy`.
  linalg::Matrix targets;

  /// Names of the `dy` target attributes.
  std::vector<std::string> target_names;

  /// Friendly dataset name (used in bench output).
  std::string name;

  /// Number of data points.
  size_t num_rows() const { return targets.rows(); }

  /// Number of target dimensions.
  size_t num_targets() const { return targets.cols(); }

  /// Number of description attributes.
  size_t num_descriptions() const { return descriptions.num_columns(); }

  /// Validates internal consistency (row counts, name counts).
  Status Validate() const;
};

}  // namespace sisd::data

#endif  // SISD_DATA_TABLE_HPP_
