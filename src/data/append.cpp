#include "data/append.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "common/strings.hpp"
#include "data/csv.hpp"

namespace sisd::data {
namespace {

/// Text the CSV reader would treat as a missing value. Appends reject
/// these loudly (unless the text is literally a known categorical label).
bool LooksMissing(const std::string& text) {
  const std::string trimmed(TrimWhitespace(text));
  return trimmed.empty() || trimmed == "NA" || trimmed == "nan" ||
         trimmed == "NaN" || trimmed == "?";
}

/// Renders a numeric cell the way `Column::ValueToString` does, so JSON
/// clients can send binary/categorical levels as numbers (0/1 matches the
/// labels CSV ingest assigns to inferred binary columns).
std::string NumberAsLabelText(double v) { return StrFormat("%.6g", v); }

Result<double> CoerceNumeric(const AppendCell& cell, size_t row,
                             const std::string& column) {
  if (cell.is_number) return cell.number;
  if (!LooksMissing(cell.text)) {
    std::optional<double> parsed = ParseDouble(cell.text);
    if (parsed.has_value()) return *parsed;
  }
  return Status::InvalidArgument(
      StrFormat("append row %zu column '%s': cannot parse '%s' as a number",
                row, column.c_str(), cell.text.c_str()));
}

/// A zero matrix of `parent.rows() + extra_rows` rows whose leading block
/// is a copy of `parent` (row-major, so one contiguous copy).
linalg::Matrix ExtendTargets(const linalg::Matrix& parent,
                             size_t extra_rows) {
  linalg::Matrix out(parent.rows() + extra_rows, parent.cols());
  if (parent.rows() > 0 && parent.cols() > 0) {
    std::copy(parent.RowData(0),
              parent.RowData(0) + parent.rows() * parent.cols(),
              out.RowData(0));
  }
  return out;
}

}  // namespace

Result<Dataset> AppendRowsFromCells(
    const Dataset& parent, const std::vector<std::string>& columns,
    const std::vector<std::vector<AppendCell>>& rows) {
  SISD_RETURN_NOT_OK(parent.Validate());
  const size_t num_desc = parent.num_descriptions();
  const size_t dy = parent.num_targets();
  if (columns.size() != num_desc + dy) {
    return Status::InvalidArgument(StrFormat(
        "append header has %zu columns, dataset has %zu "
        "(%zu descriptions + %zu targets)",
        columns.size(), num_desc + dy, num_desc, dy));
  }
  std::unordered_map<std::string, size_t> header_pos;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (!header_pos.emplace(columns[c], c).second) {
      return Status::InvalidArgument(
          StrFormat("append header repeats column '%s'", columns[c].c_str()));
    }
  }
  std::vector<size_t> desc_pos(num_desc);
  for (size_t j = 0; j < num_desc; ++j) {
    const std::string& name = parent.descriptions.column(j).name();
    auto it = header_pos.find(name);
    if (it == header_pos.end()) {
      return Status::InvalidArgument(StrFormat(
          "append header is missing description column '%s'", name.c_str()));
    }
    desc_pos[j] = it->second;
  }
  std::vector<size_t> target_pos(dy);
  for (size_t t = 0; t < dy; ++t) {
    auto it = header_pos.find(parent.target_names[t]);
    if (it == header_pos.end()) {
      return Status::InvalidArgument(
          StrFormat("append header is missing target column '%s'",
                    parent.target_names[t].c_str()));
    }
    target_pos[t] = it->second;
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != columns.size()) {
      return Status::InvalidArgument(
          StrFormat("append row %zu has %zu cells, expected %zu", r,
                    rows[r].size(), columns.size()));
    }
  }

  Dataset child;
  child.name = parent.name;
  child.target_names = parent.target_names;
  const size_t n_old = parent.num_rows();
  child.targets = ExtendTargets(parent.targets, rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t t = 0; t < dy; ++t) {
      SISD_ASSIGN_OR_RETURN(
          value, CoerceNumeric(rows[r][target_pos[t]], r,
                               parent.target_names[t]));
      child.targets(n_old + r, t) = value;
    }
  }
  for (size_t j = 0; j < num_desc; ++j) {
    const Column& col = parent.descriptions.column(j);
    if (IsOrderable(col.kind())) {
      std::vector<double> tail;
      tail.reserve(rows.size());
      for (size_t r = 0; r < rows.size(); ++r) {
        SISD_ASSIGN_OR_RETURN(
            value, CoerceNumeric(rows[r][desc_pos[j]], r, col.name()));
        tail.push_back(value);
      }
      SISD_RETURN_NOT_OK(child.descriptions.AddColumn(
          col.WithAppendedNumeric(std::move(tail))));
      continue;
    }
    const std::vector<std::string>& labels = col.labels();
    std::unordered_map<std::string, int32_t> code_of;
    for (size_t l = 0; l < labels.size(); ++l) {
      code_of.emplace(labels[l], static_cast<int32_t>(l));
    }
    std::vector<std::string> new_labels;
    std::vector<int32_t> tail;
    tail.reserve(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      const AppendCell& cell = rows[r][desc_pos[j]];
      const std::string text =
          cell.is_number ? NumberAsLabelText(cell.number) : cell.text;
      auto it = code_of.find(text);
      if (it != code_of.end()) {
        tail.push_back(it->second);
        continue;
      }
      if (!cell.is_number && LooksMissing(cell.text)) {
        return Status::InvalidArgument(
            StrFormat("append row %zu column '%s': missing value '%s'", r,
                      col.name().c_str(), cell.text.c_str()));
      }
      if (col.kind() == AttributeKind::kBinary) {
        return Status::InvalidArgument(StrFormat(
            "append row %zu column '%s': '%s' is not one of the binary "
            "labels ('%s', '%s')",
            r, col.name().c_str(), text.c_str(), labels[0].c_str(),
            labels[1].c_str()));
      }
      const int32_t code =
          static_cast<int32_t>(labels.size() + new_labels.size());
      code_of.emplace(text, code);
      new_labels.push_back(text);
      tail.push_back(code);
    }
    SISD_RETURN_NOT_OK(child.descriptions.AddColumn(
        col.WithAppendedCodes(std::move(tail), std::move(new_labels))));
  }
  SISD_RETURN_NOT_OK(child.Validate());
  return child;
}

Result<Dataset> AppendRowsFromCsvText(const Dataset& parent,
                                      const std::string& csv_text) {
  SISD_ASSIGN_OR_RETURN(raw, ReadCsvRawText(csv_text));
  std::vector<std::vector<AppendCell>> rows;
  rows.reserve(raw.rows.size());
  for (std::vector<std::string>& record : raw.rows) {
    std::vector<AppendCell> row;
    row.reserve(record.size());
    for (std::string& cell : record) {
      row.push_back(AppendCell::Text(std::move(cell)));
    }
    rows.push_back(std::move(row));
  }
  return AppendRowsFromCells(parent, raw.header, rows);
}

Result<Dataset> AppendDatasetSlice(const Dataset& parent,
                                   const Dataset& extra) {
  SISD_RETURN_NOT_OK(parent.Validate());
  SISD_RETURN_NOT_OK(extra.Validate());
  if (extra.target_names != parent.target_names) {
    return Status::InvalidArgument(
        "appended slice target columns do not match the parent dataset");
  }
  if (extra.num_descriptions() != parent.num_descriptions()) {
    return Status::InvalidArgument(StrFormat(
        "appended slice has %zu description columns, parent has %zu",
        extra.num_descriptions(), parent.num_descriptions()));
  }
  for (size_t j = 0; j < parent.num_descriptions(); ++j) {
    const Column& a = parent.descriptions.column(j);
    const Column& b = extra.descriptions.column(j);
    if (a.name() != b.name() || a.kind() != b.kind()) {
      return Status::InvalidArgument(StrFormat(
          "appended slice column %zu is '%s' (%s), parent has '%s' (%s)", j,
          b.name().c_str(), AttributeKindToString(b.kind()),
          a.name().c_str(), AttributeKindToString(a.kind())));
    }
  }

  const size_t n_old = parent.num_rows();
  const size_t extra_rows = extra.num_rows();
  Dataset child;
  child.name = parent.name;
  child.target_names = parent.target_names;
  child.targets = ExtendTargets(parent.targets, extra_rows);
  for (size_t i = 0; i < extra_rows; ++i) {
    for (size_t t = 0; t < parent.num_targets(); ++t) {
      child.targets(n_old + i, t) = extra.targets(i, t);
    }
  }
  for (size_t j = 0; j < parent.num_descriptions(); ++j) {
    const Column& a = parent.descriptions.column(j);
    const Column& b = extra.descriptions.column(j);
    if (IsOrderable(a.kind())) {
      SISD_RETURN_NOT_OK(child.descriptions.AddColumn(
          a.WithAppendedNumeric(b.numeric_values())));
      continue;
    }
    std::unordered_map<std::string, int32_t> code_of;
    for (size_t l = 0; l < a.labels().size(); ++l) {
      code_of.emplace(a.labels()[l], static_cast<int32_t>(l));
    }
    std::vector<std::string> new_labels;
    std::vector<int32_t> remap(b.labels().size());
    for (size_t l = 0; l < b.labels().size(); ++l) {
      auto it = code_of.find(b.labels()[l]);
      if (it != code_of.end()) {
        remap[l] = it->second;
        continue;
      }
      if (a.kind() == AttributeKind::kBinary) {
        return Status::InvalidArgument(StrFormat(
            "appended slice column '%s': label '%s' is not one of the "
            "binary labels ('%s', '%s')",
            a.name().c_str(), b.labels()[l].c_str(), a.labels()[0].c_str(),
            a.labels()[1].c_str()));
      }
      const int32_t code =
          static_cast<int32_t>(a.labels().size() + new_labels.size());
      code_of.emplace(b.labels()[l], code);
      new_labels.push_back(b.labels()[l]);
      remap[l] = code;
    }
    std::vector<int32_t> tail;
    tail.reserve(extra_rows);
    b.ForEachCode(0, [&](size_t, int32_t code) {
      tail.push_back(remap[static_cast<size_t>(code)]);
    });
    SISD_RETURN_NOT_OK(child.descriptions.AddColumn(
        a.WithAppendedCodes(std::move(tail), std::move(new_labels))));
  }
  SISD_RETURN_NOT_OK(child.Validate());
  return child;
}

}  // namespace sisd::data
