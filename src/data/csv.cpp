#include "data/csv.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <set>

#include "common/strings.hpp"

namespace sisd::data {

namespace {

/// Splits one CSV record honoring double-quote escaping.
Result<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == sep) {
        fields.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
  }
  if (in_quotes) {
    return Status::IOError("unterminated quoted field");
  }
  fields.push_back(current);
  return fields;
}

bool IsMissing(const std::string& value, const CsvOptions& options) {
  const std::string trimmed(TrimWhitespace(value));
  for (const std::string& na : options.na_values) {
    if (trimmed == na) return true;
  }
  return false;
}

std::string EscapeCsvField(const std::string& field, char sep) {
  const bool needs_quotes =
      field.find(sep) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

/// Incremental line-fed CSV parser: the single implementation behind
/// `ReadCsvText` (whole string in memory) and `ReadCsvStream` (fixed-size
/// chunks). Feeding it the same line sequence yields the same table, which
/// is what keeps the streaming and whole-file parses byte-for-byte equal.
class CsvLineParser {
 public:
  explicit CsvLineParser(const CsvOptions& options) : options_(options) {}

  /// Consumes one record line (newline and any preceding '\r' already
  /// stripped). The first line carries the header (or, without one, sizes
  /// the synthesized colN names and doubles as the first data row).
  Status ConsumeLine(const std::string& line) {
    ++line_number_;
    if (!have_header_) {
      SISD_ASSIGN_OR_RETURN(first_record,
                            SplitCsvRecord(line, options_.separator));
      if (options_.has_header) {
        header_ = std::move(first_record);
      } else {
        header_.reserve(first_record.size());
        for (size_t j = 0; j < first_record.size(); ++j) {
          header_.push_back(StrFormat("col%zu", j));
        }
      }
      cells_.resize(header_.size());
      have_header_ = true;
      if (options_.has_header) return Status::OK();
      return ConsumeDataLine(line);
    }
    return ConsumeDataLine(line);
  }

  /// Validates completeness and runs type inference over the collected
  /// cells, producing the table.
  Result<DataTable> Finish() const;

 private:
  Status ConsumeDataLine(const std::string& line) {
    if (TrimWhitespace(line).empty()) return Status::OK();  // blank: skip
    SISD_ASSIGN_OR_RETURN(record,
                          SplitCsvRecord(line, options_.separator));
    if (record.size() != cells_.size()) {
      return Status::IOError(
          StrFormat("line %zu has %zu fields, expected %zu", line_number_,
                    record.size(), cells_.size()));
    }
    for (const std::string& field : record) {
      if (IsMissing(field, options_)) return Status::OK();  // complete-case
    }
    for (size_t j = 0; j < cells_.size(); ++j) {
      cells_[j].push_back(std::move(record[j]));
    }
    return Status::OK();
  }

  const CsvOptions& options_;
  size_t line_number_ = 0;  ///< 1-based, counts every consumed line
  bool have_header_ = false;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

Result<DataTable> CsvLineParser::Finish() const {
  if (!have_header_) return Status::IOError("empty CSV input");
  const size_t num_cols = header_.size();
  const std::vector<std::vector<std::string>>& cells = cells_;
  const std::vector<std::string>& header = header_;
  const CsvOptions& options = options_;
  if (cells.empty() || cells[0].empty()) {
    return Status::IOError("CSV has no complete data rows");
  }

  DataTable table;
  for (size_t j = 0; j < num_cols; ++j) {
    const std::string& name = header[j];
    // Determine kind: override > inference.
    AttributeKind kind;
    auto override_it = options.kind_overrides.find(name);
    bool overridden = override_it != options.kind_overrides.end();
    std::vector<double> numeric;
    numeric.reserve(cells[j].size());
    bool all_numeric = true;
    std::set<double> distinct;
    for (const std::string& cell : cells[j]) {
      std::optional<double> value = ParseDouble(cell);
      if (!value.has_value()) {
        all_numeric = false;
        break;
      }
      numeric.push_back(*value);
      if (distinct.size() <= 2) distinct.insert(*value);
    }
    if (overridden) {
      kind = override_it->second;
      if (IsOrderable(kind) && !all_numeric) {
        return Status::InvalidArgument(StrFormat(
            "column '%s' declared %s but has non-numeric values",
            name.c_str(), AttributeKindToString(kind)));
      }
    } else if (all_numeric) {
      const bool binary01 =
          distinct.size() <= 2 &&
          std::all_of(distinct.begin(), distinct.end(),
                      [](double v) { return v == 0.0 || v == 1.0; });
      kind = binary01 ? AttributeKind::kBinary : AttributeKind::kNumeric;
    } else {
      kind = AttributeKind::kCategorical;
    }

    Status add_status;
    switch (kind) {
      case AttributeKind::kNumeric:
        add_status = table.AddColumn(Column::Numeric(name, std::move(numeric)));
        break;
      case AttributeKind::kOrdinal:
        add_status = table.AddColumn(Column::Ordinal(name, std::move(numeric)));
        break;
      case AttributeKind::kBinary: {
        std::vector<bool> bits;
        if (all_numeric) {
          bits.reserve(numeric.size());
          for (double v : numeric) bits.push_back(v != 0.0);
        } else {
          return Status::InvalidArgument(StrFormat(
              "column '%s' declared binary but has non-numeric values",
              name.c_str()));
        }
        add_status = table.AddColumn(Column::Binary(name, bits));
        break;
      }
      case AttributeKind::kCategorical:
        add_status =
            table.AddColumn(Column::CategoricalFromStrings(name, cells[j]));
        break;
    }
    SISD_RETURN_NOT_OK(add_status);
  }
  return table;
}

}  // namespace

Result<DataTable> ReadCsvText(const std::string& text,
                              const CsvOptions& options) {
  CsvLineParser parser(options);
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      if (!current.empty() && current.back() == '\r') current.pop_back();
      SISD_RETURN_NOT_OK(parser.ConsumeLine(current));
      current.clear();
    } else {
      current += c;
    }
  }
  // A last line without a terminating newline (kept verbatim: no \r strip,
  // matching the historical whole-file parse).
  if (!current.empty()) {
    SISD_RETURN_NOT_OK(parser.ConsumeLine(current));
  }
  return parser.Finish();
}

Result<DataTable> ReadCsvStream(std::istream& in,
                                const CsvOptions& options) {
  CsvLineParser parser(options);
  std::string pending;  // partial line spanning chunk boundaries
  std::vector<char> chunk(kCsvChunkBytes);
  for (;;) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const size_t got = static_cast<size_t>(in.gcount());
    if (got == 0) {
      if (in.bad()) return Status::IOError("CSV stream read failed");
      break;
    }
    size_t start = 0;
    for (size_t i = 0; i < got; ++i) {
      if (chunk[i] != '\n') continue;
      pending.append(chunk.data() + start, i - start);
      if (!pending.empty() && pending.back() == '\r') pending.pop_back();
      SISD_RETURN_NOT_OK(parser.ConsumeLine(pending));
      pending.clear();
      start = i + 1;
    }
    pending.append(chunk.data() + start, got - start);
    if (in.eof()) break;
    if (in.bad()) return Status::IOError("CSV stream read failed");
  }
  if (!pending.empty()) {
    SISD_RETURN_NOT_OK(parser.ConsumeLine(pending));
  }
  return parser.Finish();
}

Result<DataTable> ReadCsvFile(const std::string& path,
                              const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrFormat("cannot open '%s'", path.c_str()));
  }
  return ReadCsvStream(in, options);
}

Result<RawCsv> ReadCsvRawText(const std::string& text, char separator) {
  RawCsv raw;
  bool have_header = false;
  size_t line_number = 0;
  std::string current;
  const auto consume = [&](const std::string& line) -> Status {
    ++line_number;
    if (!have_header) {
      SISD_ASSIGN_OR_RETURN(header, SplitCsvRecord(line, separator));
      raw.header = std::move(header);
      have_header = true;
      return Status::OK();
    }
    if (TrimWhitespace(line).empty()) return Status::OK();  // blank: skip
    SISD_ASSIGN_OR_RETURN(record, SplitCsvRecord(line, separator));
    if (record.size() != raw.header.size()) {
      return Status::IOError(StrFormat("line %zu has %zu fields, expected %zu",
                                       line_number, record.size(),
                                       raw.header.size()));
    }
    raw.rows.push_back(std::move(record));
    return Status::OK();
  };
  for (char c : text) {
    if (c == '\n') {
      if (!current.empty() && current.back() == '\r') current.pop_back();
      SISD_RETURN_NOT_OK(consume(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    SISD_RETURN_NOT_OK(consume(current));
  }
  if (!have_header) return Status::IOError("empty CSV input");
  return raw;
}

std::string WriteCsvText(const DataTable& table, char separator) {
  std::string out;
  const std::vector<std::string> names = table.ColumnNames();
  for (size_t j = 0; j < names.size(); ++j) {
    if (j > 0) out += separator;
    out += EscapeCsvField(names[j], separator);
  }
  out += '\n';
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < table.num_columns(); ++j) {
      if (j > 0) out += separator;
      out += EscapeCsvField(table.column(j).ValueToString(i), separator);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const DataTable& table, const std::string& path,
                    char separator) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError(StrFormat("cannot open '%s' for writing",
                                     path.c_str()));
  }
  out << WriteCsvText(table, separator);
  if (!out) {
    return Status::IOError(StrFormat("write to '%s' failed", path.c_str()));
  }
  return Status::OK();
}

Result<Dataset> MakeDataset(const DataTable& table,
                            const std::vector<std::string>& target_columns,
                            std::string dataset_name) {
  if (target_columns.empty()) {
    return Status::InvalidArgument("need at least one target column");
  }
  std::set<std::string> target_set(target_columns.begin(),
                                   target_columns.end());
  if (target_set.size() != target_columns.size()) {
    return Status::InvalidArgument("duplicate target column names");
  }

  Dataset dataset;
  dataset.name = std::move(dataset_name);
  dataset.target_names = target_columns;
  dataset.targets =
      linalg::Matrix(table.num_rows(), target_columns.size());
  for (size_t t = 0; t < target_columns.size(); ++t) {
    SISD_ASSIGN_OR_RETURN(col, table.ColumnByName(target_columns[t]));
    if (!IsOrderable(col->kind())) {
      return Status::InvalidArgument(
          StrFormat("target column '%s' must be numeric",
                    target_columns[t].c_str()));
    }
    for (size_t i = 0; i < table.num_rows(); ++i) {
      dataset.targets(i, t) = col->NumericValue(i);
    }
  }
  for (size_t j = 0; j < table.num_columns(); ++j) {
    const Column& col = table.column(j);
    if (target_set.count(col.name()) > 0) continue;
    SISD_RETURN_NOT_OK(dataset.descriptions.AddColumn(col));
  }
  SISD_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

}  // namespace sisd::data
