/// \file csv.hpp
/// \brief CSV reading/writing for DataTable and Dataset.
///
/// The reader supports quoted fields, type inference (numeric vs
/// categorical; low-cardinality 0/1 columns become binary), and explicit
/// per-column overrides. This is the "data handling boilerplate" the
/// reproduction needs so users can point the miner at their own files.
///
/// All read entry points share one line-level parser, so they agree byte
/// for byte: `ReadCsvText` walks an in-memory string, while
/// `ReadCsvStream`/`ReadCsvFile` consume their input in fixed-size chunks
/// (`kCsvChunkBytes`) and never buffer the whole file — large ingests
/// (catalog `--preload`, the `dataset_load` verb) hold only the parsed
/// cells plus one chunk.

#ifndef SISD_DATA_CSV_HPP_
#define SISD_DATA_CSV_HPP_

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "data/table.hpp"

namespace sisd::data {

/// \brief Options controlling CSV parsing and type inference.
struct CsvOptions {
  char separator = ',';           ///< field separator
  bool has_header = true;         ///< first row = column names
  /// Maximum distinct values for a numeric-looking column to still be
  /// classified as categorical when listed in `categorical_overrides`.
  std::unordered_map<std::string, AttributeKind> kind_overrides;
  /// Strings treated as missing values; rows containing missing fields in
  /// any used column are dropped (the paper's datasets are complete; this
  /// keeps the semantics simple and explicit).
  std::vector<std::string> na_values = {"", "NA", "nan", "NaN", "?"};
};

/// \brief Chunk size of the streaming reader (one read(2)-ish unit; the
/// parser holds at most one partial line across chunk boundaries).
inline constexpr size_t kCsvChunkBytes = 64 * 1024;

/// \brief Parses CSV text into a DataTable.
///
/// Columns where every non-missing value parses as a double become numeric
/// (or binary when the distinct values are exactly {0, 1}); everything else
/// becomes categorical. `options.kind_overrides` wins when present.
Result<DataTable> ReadCsvText(const std::string& text,
                              const CsvOptions& options = CsvOptions());

/// \brief Reads CSV from a stream in `kCsvChunkBytes` chunks without
/// buffering the whole input. Result is byte-for-byte identical to
/// `ReadCsvText` over the same bytes.
Result<DataTable> ReadCsvStream(std::istream& in,
                                const CsvOptions& options = CsvOptions());

/// \brief Reads a CSV file into a DataTable (chunked via `ReadCsvStream`).
Result<DataTable> ReadCsvFile(const std::string& path,
                              const CsvOptions& options = CsvOptions());

/// \brief A raw parsed CSV: header plus untyped string cells.
struct RawCsv {
  std::vector<std::string> header;
  /// Data records, each with exactly `header.size()` fields.
  std::vector<std::vector<std::string>> rows;
};

/// \brief Parses CSV text into raw string cells: no type inference and no
/// missing-value row dropping (the append path rejects bad cells loudly
/// instead of skipping rows). Same record grammar as `ReadCsvText`:
/// quoted fields, blank lines skipped, trailing '\r' stripped; the first
/// line is the header.
Result<RawCsv> ReadCsvRawText(const std::string& text, char separator = ',');

/// \brief Serializes a DataTable to CSV text (RFC-4180-style quoting).
std::string WriteCsvText(const DataTable& table, char separator = ',');

/// \brief Writes a DataTable to a CSV file.
Status WriteCsvFile(const DataTable& table, const std::string& path,
                    char separator = ',');

/// \brief Splits a DataTable into a Dataset by naming the target columns.
///
/// Target columns must be numeric; they are removed from the description
/// table and packed into the target matrix in the order given.
Result<Dataset> MakeDataset(const DataTable& table,
                            const std::vector<std::string>& target_columns,
                            std::string dataset_name = "dataset");

}  // namespace sisd::data

#endif  // SISD_DATA_CSV_HPP_
