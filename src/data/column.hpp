/// \file column.hpp
/// \brief Typed data columns for description attributes.
///
/// The paper's method handles "categorical, ordinal, and numerical
/// description attributes" (§I). We store them as:
///  - Numeric / Ordinal: doubles (ordinal keeps ordered semantics so the
///    search layer emits `<=` / `>=` conditions, e.g. the water-quality
///    bioindicator levels 0/1/3/5);
///  - Categorical / Binary: small integer codes plus a label table (the
///    search layer emits equality conditions).

#ifndef SISD_DATA_COLUMN_HPP_
#define SISD_DATA_COLUMN_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace sisd::data {

/// \brief Semantic type of a description attribute.
enum class AttributeKind {
  kNumeric,      ///< real-valued; interval conditions
  kOrdinal,      ///< ordered discrete; interval conditions
  kCategorical,  ///< unordered discrete; equality conditions
  kBinary,       ///< two-level categorical; equality conditions
};

/// \brief Human-readable name of an attribute kind.
const char* AttributeKindToString(AttributeKind kind);

/// \brief True for kinds on which interval (`<=`/`>=`) conditions make sense.
bool IsOrderable(AttributeKind kind);

/// \brief One named, typed column of `n` values.
///
/// Numeric/ordinal columns store doubles; categorical/binary columns store
/// integer codes into a label table. Construct via the named factories.
class Column {
 public:
  /// Numeric column from raw values.
  static Column Numeric(std::string name, std::vector<double> values);

  /// Ordinal column (ordered discrete values stored as doubles).
  static Column Ordinal(std::string name, std::vector<double> values);

  /// Categorical column from codes and a label table.
  /// Every code must index into `labels`.
  static Column Categorical(std::string name, std::vector<int32_t> codes,
                            std::vector<std::string> labels);

  /// Categorical column from string values (labels assigned in order of
  /// first appearance).
  static Column CategoricalFromStrings(std::string name,
                                       const std::vector<std::string>& values);

  /// Binary column from bool values; labels default to "0"/"1".
  static Column Binary(std::string name, const std::vector<bool>& values,
                       std::string label_false = "0",
                       std::string label_true = "1");

  /// Attribute name.
  const std::string& name() const { return name_; }

  /// Attribute kind.
  AttributeKind kind() const { return kind_; }

  /// Number of rows.
  size_t size() const {
    return IsOrderable(kind_) ? numeric_.size() : codes_.size();
  }

  /// Numeric value at row `i` (numeric/ordinal columns only).
  double NumericValue(size_t i) const {
    SISD_DCHECK(IsOrderable(kind_));
    SISD_DCHECK(i < numeric_.size());
    return numeric_[i];
  }

  /// Code at row `i` (categorical/binary columns only).
  int32_t Code(size_t i) const {
    SISD_DCHECK(!IsOrderable(kind_));
    SISD_DCHECK(i < codes_.size());
    return codes_[i];
  }

  /// Number of distinct levels (categorical/binary columns only).
  size_t NumLevels() const {
    SISD_DCHECK(!IsOrderable(kind_));
    return labels_.size();
  }

  /// Label of `code` (categorical/binary columns only).
  const std::string& Label(int32_t code) const {
    SISD_DCHECK(!IsOrderable(kind_));
    SISD_DCHECK(code >= 0 && static_cast<size_t>(code) < labels_.size());
    return labels_[static_cast<size_t>(code)];
  }

  /// All numeric values (numeric/ordinal columns only).
  const std::vector<double>& numeric_values() const {
    SISD_DCHECK(IsOrderable(kind_));
    return numeric_;
  }

  /// All codes (categorical/binary columns only).
  const std::vector<int32_t>& codes() const {
    SISD_DCHECK(!IsOrderable(kind_));
    return codes_;
  }

  /// Label table (categorical/binary columns only).
  const std::vector<std::string>& labels() const {
    SISD_DCHECK(!IsOrderable(kind_));
    return labels_;
  }

  /// Renders the value at row `i` as a string regardless of kind.
  std::string ValueToString(size_t i) const;

 private:
  Column(std::string name, AttributeKind kind)
      : name_(std::move(name)), kind_(kind) {}

  std::string name_;
  AttributeKind kind_;
  std::vector<double> numeric_;       // numeric / ordinal
  std::vector<int32_t> codes_;        // categorical / binary
  std::vector<std::string> labels_;   // categorical / binary
};

}  // namespace sisd::data

#endif  // SISD_DATA_COLUMN_HPP_
