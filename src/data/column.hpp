/// \file column.hpp
/// \brief Typed data columns for description attributes.
///
/// The paper's method handles "categorical, ordinal, and numerical
/// description attributes" (§I). We store them as:
///  - Numeric / Ordinal: doubles (ordinal keeps ordered semantics so the
///    search layer emits `<=` / `>=` conditions, e.g. the water-quality
///    bioindicator levels 0/1/3/5);
///  - Categorical / Binary: small integer codes plus a label table (the
///    search layer emits equality conditions).
///
/// Storage is segmented: a column is a sequence of immutable chunks, each
/// held by `shared_ptr`. Appending rows (`WithAppendedNumeric` /
/// `WithAppendedCodes`) produces a new column that shares every existing
/// chunk with its parent and adds one chunk for the tail, so dataset
/// versions in the catalog cost O(new rows), not O(n) copies. Columns
/// built by the factories have exactly one segment.

#ifndef SISD_DATA_COLUMN_HPP_
#define SISD_DATA_COLUMN_HPP_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace sisd::data {

/// \brief Semantic type of a description attribute.
enum class AttributeKind {
  kNumeric,      ///< real-valued; interval conditions
  kOrdinal,      ///< ordered discrete; interval conditions
  kCategorical,  ///< unordered discrete; equality conditions
  kBinary,       ///< two-level categorical; equality conditions
};

/// \brief Human-readable name of an attribute kind.
const char* AttributeKindToString(AttributeKind kind);

/// \brief True for kinds on which interval (`<=`/`>=`) conditions make sense.
bool IsOrderable(AttributeKind kind);

/// \brief One named, typed column of `n` values.
///
/// Numeric/ordinal columns store doubles; categorical/binary columns store
/// integer codes into a label table. Construct via the named factories.
class Column {
 public:
  /// Numeric column from raw values.
  static Column Numeric(std::string name, std::vector<double> values);

  /// Ordinal column (ordered discrete values stored as doubles).
  static Column Ordinal(std::string name, std::vector<double> values);

  /// Categorical column from codes and a label table.
  /// Every code must index into `labels`.
  static Column Categorical(std::string name, std::vector<int32_t> codes,
                            std::vector<std::string> labels);

  /// Categorical column from string values (labels assigned in order of
  /// first appearance).
  static Column CategoricalFromStrings(std::string name,
                                       const std::vector<std::string>& values);

  /// Binary column from bool values; labels default to "0"/"1".
  static Column Binary(std::string name, const std::vector<bool>& values,
                       std::string label_false = "0",
                       std::string label_true = "1");

  /// A column sharing every chunk of this one plus one new chunk holding
  /// `tail` (numeric/ordinal columns only). An empty tail shares storage
  /// without adding a chunk.
  Column WithAppendedNumeric(std::vector<double> tail) const;

  /// A column sharing every chunk of this one plus one new chunk holding
  /// `tail` (categorical/binary columns only). `new_labels` extends the
  /// label table; tail codes index into labels() + new_labels. Existing
  /// chunks stay valid because old codes index a prefix of the new table.
  Column WithAppendedCodes(std::vector<int32_t> tail,
                           std::vector<std::string> new_labels = {}) const;

  /// Attribute name.
  const std::string& name() const { return name_; }

  /// Attribute kind.
  AttributeKind kind() const { return kind_; }

  /// Number of rows.
  size_t size() const { return size_; }

  /// Numeric value at row `i` (numeric/ordinal columns only).
  double NumericValue(size_t i) const {
    SISD_DCHECK(IsOrderable(kind_));
    SISD_DCHECK(i < size_);
    const Segment& seg = SegmentContaining(i);
    return (*seg.numeric)[i - seg.begin];
  }

  /// Code at row `i` (categorical/binary columns only).
  int32_t Code(size_t i) const {
    SISD_DCHECK(!IsOrderable(kind_));
    SISD_DCHECK(i < size_);
    const Segment& seg = SegmentContaining(i);
    return (*seg.codes)[i - seg.begin];
  }

  /// Number of distinct levels (categorical/binary columns only).
  size_t NumLevels() const {
    SISD_DCHECK(!IsOrderable(kind_));
    return labels_.size();
  }

  /// Label of `code` (categorical/binary columns only).
  const std::string& Label(int32_t code) const {
    SISD_DCHECK(!IsOrderable(kind_));
    SISD_DCHECK(code >= 0 && static_cast<size_t>(code) < labels_.size());
    return labels_[static_cast<size_t>(code)];
  }

  /// All numeric values, flattened into one contiguous vector
  /// (numeric/ordinal columns only). O(n) copy when multi-segment.
  std::vector<double> numeric_values() const;

  /// All codes, flattened into one contiguous vector (categorical/binary
  /// columns only). O(n) copy when multi-segment.
  std::vector<int32_t> codes() const;

  /// Label table (categorical/binary columns only).
  const std::vector<std::string>& labels() const {
    SISD_DCHECK(!IsOrderable(kind_));
    return labels_;
  }

  /// Visits rows [from, n) in order as fn(row, value), chunk-sequential
  /// (numeric/ordinal columns only).
  template <typename Fn>
  void ForEachNumeric(size_t from, Fn&& fn) const {
    SISD_DCHECK(IsOrderable(kind_));
    for (const Segment& seg : segments_) {
      const std::vector<double>& values = *seg.numeric;
      const size_t end = seg.begin + values.size();
      if (end <= from) continue;
      for (size_t i = std::max(from, seg.begin); i < end; ++i) {
        fn(i, values[i - seg.begin]);
      }
    }
  }

  /// Visits rows [from, n) in order as fn(row, code), chunk-sequential
  /// (categorical/binary columns only).
  template <typename Fn>
  void ForEachCode(size_t from, Fn&& fn) const {
    SISD_DCHECK(!IsOrderable(kind_));
    for (const Segment& seg : segments_) {
      const std::vector<int32_t>& values = *seg.codes;
      const size_t end = seg.begin + values.size();
      if (end <= from) continue;
      for (size_t i = std::max(from, seg.begin); i < end; ++i) {
        fn(i, values[i - seg.begin]);
      }
    }
  }

  /// Number of storage chunks (1 for factory-built columns).
  size_t NumSegments() const { return segments_.size(); }

  /// Identity of the backing storage of segment `s` — equal pointers mean
  /// shared (not copied) storage. For prefix-sharing tests.
  const void* SegmentIdentity(size_t s) const {
    SISD_DCHECK(s < segments_.size());
    return IsOrderable(kind_)
               ? static_cast<const void*>(segments_[s].numeric.get())
               : static_cast<const void*>(segments_[s].codes.get());
  }

  /// Renders the value at row `i` as a string regardless of kind.
  std::string ValueToString(size_t i) const;

 private:
  /// One immutable storage chunk covering rows [begin, begin + size).
  struct Segment {
    size_t begin = 0;
    std::shared_ptr<const std::vector<double>> numeric;  // numeric / ordinal
    std::shared_ptr<const std::vector<int32_t>> codes;   // categorical / binary
  };

  Column(std::string name, AttributeKind kind)
      : name_(std::move(name)), kind_(kind) {}

  const Segment& SegmentContaining(size_t i) const {
    if (segments_.size() == 1) return segments_.front();
    // Last segment whose begin is <= i.
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), i,
        [](size_t row, const Segment& seg) { return row < seg.begin; });
    SISD_DCHECK(it != segments_.begin());
    return *(it - 1);
  }

  std::string name_;
  AttributeKind kind_;
  size_t size_ = 0;
  std::vector<Segment> segments_;
  std::vector<std::string> labels_;  // categorical / binary
};

}  // namespace sisd::data

#endif  // SISD_DATA_COLUMN_HPP_
