#include "data/column.hpp"

#include <unordered_map>

#include "common/strings.hpp"

namespace sisd::data {

const char* AttributeKindToString(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kNumeric:
      return "numeric";
    case AttributeKind::kOrdinal:
      return "ordinal";
    case AttributeKind::kCategorical:
      return "categorical";
    case AttributeKind::kBinary:
      return "binary";
  }
  return "invalid";
}

bool IsOrderable(AttributeKind kind) {
  return kind == AttributeKind::kNumeric || kind == AttributeKind::kOrdinal;
}

Column Column::Numeric(std::string name, std::vector<double> values) {
  Column col(std::move(name), AttributeKind::kNumeric);
  col.size_ = values.size();
  Segment seg;
  seg.numeric = std::make_shared<const std::vector<double>>(std::move(values));
  col.segments_.push_back(std::move(seg));
  return col;
}

Column Column::Ordinal(std::string name, std::vector<double> values) {
  Column col(std::move(name), AttributeKind::kOrdinal);
  col.size_ = values.size();
  Segment seg;
  seg.numeric = std::make_shared<const std::vector<double>>(std::move(values));
  col.segments_.push_back(std::move(seg));
  return col;
}

Column Column::Categorical(std::string name, std::vector<int32_t> codes,
                           std::vector<std::string> labels) {
  for (int32_t code : codes) {
    SISD_CHECK(code >= 0 && static_cast<size_t>(code) < labels.size());
  }
  Column col(std::move(name), AttributeKind::kCategorical);
  col.size_ = codes.size();
  Segment seg;
  seg.codes = std::make_shared<const std::vector<int32_t>>(std::move(codes));
  col.segments_.push_back(std::move(seg));
  col.labels_ = std::move(labels);
  return col;
}

Column Column::CategoricalFromStrings(std::string name,
                                      const std::vector<std::string>& values) {
  std::vector<int32_t> codes;
  codes.reserve(values.size());
  std::vector<std::string> labels;
  std::unordered_map<std::string, int32_t> code_of;
  for (const std::string& v : values) {
    auto it = code_of.find(v);
    if (it == code_of.end()) {
      const int32_t code = static_cast<int32_t>(labels.size());
      labels.push_back(v);
      code_of.emplace(v, code);
      codes.push_back(code);
    } else {
      codes.push_back(it->second);
    }
  }
  return Categorical(std::move(name), std::move(codes), std::move(labels));
}

Column Column::Binary(std::string name, const std::vector<bool>& values,
                      std::string label_false, std::string label_true) {
  std::vector<int32_t> codes;
  codes.reserve(values.size());
  for (bool v : values) codes.push_back(v ? 1 : 0);
  Column col(std::move(name), AttributeKind::kBinary);
  col.size_ = codes.size();
  Segment seg;
  seg.codes = std::make_shared<const std::vector<int32_t>>(std::move(codes));
  col.segments_.push_back(std::move(seg));
  col.labels_ = {std::move(label_false), std::move(label_true)};
  return col;
}

Column Column::WithAppendedNumeric(std::vector<double> tail) const {
  SISD_CHECK(IsOrderable(kind_));
  Column col(name_, kind_);
  col.segments_ = segments_;
  col.size_ = size_;
  if (!tail.empty()) {
    Segment seg;
    seg.begin = size_;
    seg.numeric = std::make_shared<const std::vector<double>>(std::move(tail));
    col.size_ += seg.numeric->size();
    col.segments_.push_back(std::move(seg));
  }
  return col;
}

Column Column::WithAppendedCodes(std::vector<int32_t> tail,
                                 std::vector<std::string> new_labels) const {
  SISD_CHECK(!IsOrderable(kind_));
  Column col(name_, kind_);
  col.labels_ = labels_;
  for (std::string& label : new_labels) col.labels_.push_back(std::move(label));
  for (int32_t code : tail) {
    SISD_CHECK(code >= 0 && static_cast<size_t>(code) < col.labels_.size());
  }
  col.segments_ = segments_;
  col.size_ = size_;
  if (!tail.empty()) {
    Segment seg;
    seg.begin = size_;
    seg.codes = std::make_shared<const std::vector<int32_t>>(std::move(tail));
    col.size_ += seg.codes->size();
    col.segments_.push_back(std::move(seg));
  }
  return col;
}

std::vector<double> Column::numeric_values() const {
  SISD_DCHECK(IsOrderable(kind_));
  if (segments_.size() == 1) return *segments_.front().numeric;
  std::vector<double> flat;
  flat.reserve(size_);
  for (const Segment& seg : segments_) {
    flat.insert(flat.end(), seg.numeric->begin(), seg.numeric->end());
  }
  return flat;
}

std::vector<int32_t> Column::codes() const {
  SISD_DCHECK(!IsOrderable(kind_));
  if (segments_.size() == 1) return *segments_.front().codes;
  std::vector<int32_t> flat;
  flat.reserve(size_);
  for (const Segment& seg : segments_) {
    flat.insert(flat.end(), seg.codes->begin(), seg.codes->end());
  }
  return flat;
}

std::string Column::ValueToString(size_t i) const {
  if (IsOrderable(kind_)) {
    return StrFormat("%.6g", NumericValue(i));
  }
  return Label(Code(i));
}

}  // namespace sisd::data
