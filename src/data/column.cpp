#include "data/column.hpp"

#include <unordered_map>

#include "common/strings.hpp"

namespace sisd::data {

const char* AttributeKindToString(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kNumeric:
      return "numeric";
    case AttributeKind::kOrdinal:
      return "ordinal";
    case AttributeKind::kCategorical:
      return "categorical";
    case AttributeKind::kBinary:
      return "binary";
  }
  return "invalid";
}

bool IsOrderable(AttributeKind kind) {
  return kind == AttributeKind::kNumeric || kind == AttributeKind::kOrdinal;
}

Column Column::Numeric(std::string name, std::vector<double> values) {
  Column col(std::move(name), AttributeKind::kNumeric);
  col.numeric_ = std::move(values);
  return col;
}

Column Column::Ordinal(std::string name, std::vector<double> values) {
  Column col(std::move(name), AttributeKind::kOrdinal);
  col.numeric_ = std::move(values);
  return col;
}

Column Column::Categorical(std::string name, std::vector<int32_t> codes,
                           std::vector<std::string> labels) {
  for (int32_t code : codes) {
    SISD_CHECK(code >= 0 && static_cast<size_t>(code) < labels.size());
  }
  Column col(std::move(name), AttributeKind::kCategorical);
  col.codes_ = std::move(codes);
  col.labels_ = std::move(labels);
  return col;
}

Column Column::CategoricalFromStrings(std::string name,
                                      const std::vector<std::string>& values) {
  std::vector<int32_t> codes;
  codes.reserve(values.size());
  std::vector<std::string> labels;
  std::unordered_map<std::string, int32_t> code_of;
  for (const std::string& v : values) {
    auto it = code_of.find(v);
    if (it == code_of.end()) {
      const int32_t code = static_cast<int32_t>(labels.size());
      labels.push_back(v);
      code_of.emplace(v, code);
      codes.push_back(code);
    } else {
      codes.push_back(it->second);
    }
  }
  return Categorical(std::move(name), std::move(codes), std::move(labels));
}

Column Column::Binary(std::string name, const std::vector<bool>& values,
                      std::string label_false, std::string label_true) {
  std::vector<int32_t> codes;
  codes.reserve(values.size());
  for (bool v : values) codes.push_back(v ? 1 : 0);
  Column col(std::move(name), AttributeKind::kBinary);
  col.codes_ = std::move(codes);
  col.labels_ = {std::move(label_false), std::move(label_true)};
  return col;
}

std::string Column::ValueToString(size_t i) const {
  if (IsOrderable(kind_)) {
    return StrFormat("%.6g", NumericValue(i));
  }
  return Label(Code(i));
}

}  // namespace sisd::data
