file(REMOVE_RECURSE
  "libsisd_data.a"
)
