# Empty dependencies file for sisd_data.
# This may be replaced when dependencies are built.
