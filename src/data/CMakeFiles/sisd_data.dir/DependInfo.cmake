
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/column.cpp" "src/data/CMakeFiles/sisd_data.dir/column.cpp.o" "gcc" "src/data/CMakeFiles/sisd_data.dir/column.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/sisd_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/sisd_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/table.cpp" "src/data/CMakeFiles/sisd_data.dir/table.cpp.o" "gcc" "src/data/CMakeFiles/sisd_data.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/sisd_common.dir/DependInfo.cmake"
  "/root/repo/src/linalg/CMakeFiles/sisd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
