file(REMOVE_RECURSE
  "CMakeFiles/sisd_data.dir/column.cpp.o"
  "CMakeFiles/sisd_data.dir/column.cpp.o.d"
  "CMakeFiles/sisd_data.dir/csv.cpp.o"
  "CMakeFiles/sisd_data.dir/csv.cpp.o.d"
  "CMakeFiles/sisd_data.dir/table.cpp.o"
  "CMakeFiles/sisd_data.dir/table.cpp.o.d"
  "libsisd_data.a"
  "libsisd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
