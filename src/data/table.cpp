#include "data/table.hpp"

#include "common/strings.hpp"

namespace sisd::data {

Status DataTable::AddColumn(Column column) {
  if (index_of_.count(column.name()) > 0) {
    return Status::AlreadyExists(
        StrFormat("column '%s' already exists", column.name().c_str()));
  }
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has %zu rows, table has %zu",
                  column.name().c_str(), column.size(), num_rows()));
  }
  index_of_.emplace(column.name(), columns_.size());
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<size_t> DataTable::ColumnIndex(const std::string& name) const {
  auto it = index_of_.find(name);
  if (it == index_of_.end()) {
    return Status::NotFound(StrFormat("no column named '%s'", name.c_str()));
  }
  return it->second;
}

Result<const Column*> DataTable::ColumnByName(const std::string& name) const {
  SISD_ASSIGN_OR_RETURN(idx, ColumnIndex(name));
  return &columns_[idx];
}

std::vector<std::string> DataTable::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& col : columns_) names.push_back(col.name());
  return names;
}

Status Dataset::Validate() const {
  if (descriptions.num_columns() > 0 &&
      descriptions.num_rows() != targets.rows()) {
    return Status::InvalidArgument(StrFormat(
        "descriptions have %zu rows but targets have %zu",
        descriptions.num_rows(), targets.rows()));
  }
  if (target_names.size() != targets.cols()) {
    return Status::InvalidArgument(
        StrFormat("%zu target names for %zu target columns",
                  target_names.size(), targets.cols()));
  }
  if (!targets.AllFinite()) {
    return Status::NumericalError("target matrix has non-finite entries");
  }
  return Status::OK();
}

}  // namespace sisd::data
