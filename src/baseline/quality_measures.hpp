/// \file quality_measures.hpp
/// \brief Classical subgroup-discovery quality measures used as baselines.
///
/// The paper contrasts its subjective measure against objective ones only
/// qualitatively (Related Work: WRAcc-based significance, Boley et al.'s
/// dispersion-corrected scores). For the Fig. 3 baseline and the ablation
/// benches we implement the standard single-target measures; all work on a
/// designated target column of the target matrix.

#ifndef SISD_BASELINE_QUALITY_MEASURES_HPP_
#define SISD_BASELINE_QUALITY_MEASURES_HPP_

#include "linalg/matrix.hpp"
#include "pattern/extension.hpp"
#include "search/beam_search.hpp"

namespace sisd::baseline {

/// \brief Summary of the full data needed by the objective measures.
struct TargetSummary {
  double mean = 0.0;
  double stddev = 0.0;    ///< population
  double median = 0.0;
  size_t n = 0;

  /// Computes the summary for column `target` of `y`.
  static TargetSummary Compute(const linalg::Matrix& y, size_t target);
};

/// \brief z-score of the subgroup mean: `sqrt(|I|) * |mean_I - mean| / sd`.
/// The classical mean-shift test statistic.
double ZScoreQuality(const linalg::Matrix& y, size_t target,
                     const TargetSummary& summary,
                     const pattern::Extension& extension);

/// \brief Continuous WRAcc (a.k.a. impact): `(|I|/n) * (mean_I - mean)`.
/// Positive version; use `fabs` for two-sided search.
double WraccQuality(const linalg::Matrix& y, size_t target,
                    const TargetSummary& summary,
                    const pattern::Extension& extension);

/// \brief Dispersion-corrected quality in the spirit of Boley et al. (2017):
/// `sqrt(|I|) * |median_I - median| / (1 + AMD_I)` where `AMD_I` is the
/// subgroup's mean absolute deviation around its median. Rewards subgroups
/// that are both displaced and tight.
double DispersionCorrectedQuality(const linalg::Matrix& y, size_t target,
                                  const TargetSummary& summary,
                                  const pattern::Extension& extension);

/// \brief Wraps a baseline measure as a beam-search QualityFunction
/// (two-sided: absolute value of the measure).
enum class BaselineMeasure { kZScore, kWracc, kDispersionCorrected };

search::QualityFunction MakeBaselineQuality(const linalg::Matrix& y,
                                            size_t target,
                                            BaselineMeasure measure);

}  // namespace sisd::baseline

#endif  // SISD_BASELINE_QUALITY_MEASURES_HPP_
