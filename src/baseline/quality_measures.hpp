/// \file quality_measures.hpp
/// \brief Classical subgroup-discovery quality measures used as baselines.
///
/// The paper contrasts its subjective measure against objective ones only
/// qualitatively (Related Work: WRAcc-based significance, Boley et al.'s
/// dispersion-corrected scores). For the Fig. 3 baseline and the ablation
/// benches we implement the standard single-target measures; all work on a
/// designated target column of the target matrix.

#ifndef SISD_BASELINE_QUALITY_MEASURES_HPP_
#define SISD_BASELINE_QUALITY_MEASURES_HPP_

#include "linalg/matrix.hpp"
#include "pattern/extension.hpp"
#include "search/beam_search.hpp"

namespace sisd::baseline {

/// \brief Summary of the full data needed by the objective measures.
struct TargetSummary {
  double mean = 0.0;
  double stddev = 0.0;    ///< population
  double median = 0.0;
  size_t n = 0;

  /// Computes the summary for column `target` of `y`.
  static TargetSummary Compute(const linalg::Matrix& y, size_t target);
};

/// \brief z-score of the subgroup mean: `sqrt(|I|) * |mean_I - mean| / sd`.
/// The classical mean-shift test statistic.
double ZScoreQuality(const linalg::Matrix& y, size_t target,
                     const TargetSummary& summary,
                     const pattern::Extension& extension);

/// \brief Continuous WRAcc (a.k.a. impact): `(|I|/n) * (mean_I - mean)`.
/// Positive version; use `fabs` for two-sided search.
double WraccQuality(const linalg::Matrix& y, size_t target,
                    const TargetSummary& summary,
                    const pattern::Extension& extension);

/// \brief Dispersion-corrected quality in the spirit of Boley et al. (2017):
/// `sqrt(|I|) * |median_I - median| / (1 + AMD_I)` where `AMD_I` is the
/// subgroup's mean absolute deviation around its median. Rewards subgroups
/// that are both displaced and tight. Equivalent to the family below at its
/// defaults (`a = 0.5`, two-sided).
double DispersionCorrectedQuality(const linalg::Matrix& y, size_t target,
                                  const TargetSummary& summary,
                                  const pattern::Extension& extension);

/// \brief Parameters of the dispersion-corrected *family* of Boley et al.
/// (2017, §2): `f_a(I) = |I|^a * shift / (1 + AMD_I)` where `shift` is the
/// subgroup's median displacement — two-sided (`|median_I - median|`) or
/// one-sided (`max(0, median_I - median)`, the paper's
/// "positive-median-shift" objective). The size exponent `a` trades off
/// generality against effect size: `a = 1` is impact-weighted (WRAcc-like),
/// `a = 0.5` the test-statistic normalization, `a = 0` pure effect size.
struct DispersionCorrectedParams {
  double size_exponent = 0.5;  ///< `a` in `|I|^a`
  bool two_sided = true;       ///< absolute vs. positive-only median shift
};

/// \brief The dispersion-corrected family member selected by `params`.
double DispersionCorrectedFamilyQuality(const linalg::Matrix& y, size_t target,
                                        const TargetSummary& summary,
                                        const pattern::Extension& extension,
                                        const DispersionCorrectedParams& params);

/// \brief Wraps a baseline measure as a beam-search QualityFunction
/// (two-sided: absolute value of the measure).
enum class BaselineMeasure { kZScore, kWracc, kDispersionCorrected };

search::QualityFunction MakeBaselineQuality(const linalg::Matrix& y,
                                            size_t target,
                                            BaselineMeasure measure);

/// \brief Wraps a dispersion-corrected family member as a beam-search
/// QualityFunction. The closure holds a non-owning pointer to `y`; the
/// caller must keep the matrix alive while the quality may be invoked.
search::QualityFunction MakeDispersionCorrectedQuality(
    const linalg::Matrix& y, size_t target, DispersionCorrectedParams params);

}  // namespace sisd::baseline

#endif  // SISD_BASELINE_QUALITY_MEASURES_HPP_
