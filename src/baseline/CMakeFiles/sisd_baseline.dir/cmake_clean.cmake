file(REMOVE_RECURSE
  "CMakeFiles/sisd_baseline.dir/quality_measures.cpp.o"
  "CMakeFiles/sisd_baseline.dir/quality_measures.cpp.o.d"
  "libsisd_baseline.a"
  "libsisd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
