file(REMOVE_RECURSE
  "libsisd_baseline.a"
)
