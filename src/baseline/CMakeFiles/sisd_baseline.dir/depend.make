# Empty dependencies file for sisd_baseline.
# This may be replaced when dependencies are built.
