#include "baseline/quality_measures.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace sisd::baseline {

namespace {

std::vector<double> TargetValues(const linalg::Matrix& y, size_t target,
                                 const pattern::Extension& extension) {
  std::vector<double> values;
  values.reserve(extension.count());
  for (size_t i : extension.ToRows()) values.push_back(y(i, target));
  return values;
}

}  // namespace

TargetSummary TargetSummary::Compute(const linalg::Matrix& y, size_t target) {
  SISD_CHECK(target < y.cols());
  TargetSummary out;
  stats::RunningStats rs;
  std::vector<double> values;
  values.reserve(y.rows());
  for (size_t i = 0; i < y.rows(); ++i) {
    rs.Add(y(i, target));
    values.push_back(y(i, target));
  }
  out.mean = rs.Mean();
  out.stddev = rs.StdDevPopulation();
  out.median = stats::Quantile(values, 0.5);
  out.n = y.rows();
  return out;
}

double ZScoreQuality(const linalg::Matrix& y, size_t target,
                     const TargetSummary& summary,
                     const pattern::Extension& extension) {
  SISD_CHECK(!extension.empty());
  if (summary.stddev <= 0.0) return 0.0;
  double mean_i = 0.0;
  for (size_t i : extension.ToRows()) mean_i += y(i, target);
  mean_i /= double(extension.count());
  return std::sqrt(double(extension.count())) *
         std::fabs(mean_i - summary.mean) / summary.stddev;
}

double WraccQuality(const linalg::Matrix& y, size_t target,
                    const TargetSummary& summary,
                    const pattern::Extension& extension) {
  SISD_CHECK(!extension.empty());
  double mean_i = 0.0;
  for (size_t i : extension.ToRows()) mean_i += y(i, target);
  mean_i /= double(extension.count());
  return (double(extension.count()) / double(summary.n)) *
         (mean_i - summary.mean);
}

double DispersionCorrectedQuality(const linalg::Matrix& y, size_t target,
                                  const TargetSummary& summary,
                                  const pattern::Extension& extension) {
  return DispersionCorrectedFamilyQuality(y, target, summary, extension,
                                          DispersionCorrectedParams{});
}

double DispersionCorrectedFamilyQuality(
    const linalg::Matrix& y, size_t target, const TargetSummary& summary,
    const pattern::Extension& extension,
    const DispersionCorrectedParams& params) {
  SISD_CHECK(!extension.empty());
  std::vector<double> values = TargetValues(y, target, extension);
  const double median_i = stats::Quantile(values, 0.5);
  double amd = 0.0;
  for (double v : values) amd += std::fabs(v - median_i);
  amd /= double(values.size());
  const double raw_shift = median_i - summary.median;
  const double shift =
      params.two_sided ? std::fabs(raw_shift) : std::max(0.0, raw_shift);
  const double m = double(values.size());
  // Keep the historical sqrt() bits for the default exponent.
  const double size_term = params.size_exponent == 0.5
                               ? std::sqrt(m)
                               : std::pow(m, params.size_exponent);
  return size_term * shift / (1.0 + amd);
}

search::QualityFunction MakeBaselineQuality(const linalg::Matrix& y,
                                            size_t target,
                                            BaselineMeasure measure) {
  const TargetSummary summary = TargetSummary::Compute(y, target);
  return [&y, target, summary, measure](const pattern::Intention&,
                                        const pattern::Extension& extension) {
    switch (measure) {
      case BaselineMeasure::kZScore:
        return ZScoreQuality(y, target, summary, extension);
      case BaselineMeasure::kWracc:
        return std::fabs(WraccQuality(y, target, summary, extension));
      case BaselineMeasure::kDispersionCorrected:
        return DispersionCorrectedQuality(y, target, summary, extension);
    }
    return 0.0;
  };
}

search::QualityFunction MakeDispersionCorrectedQuality(
    const linalg::Matrix& y, size_t target, DispersionCorrectedParams params) {
  const TargetSummary summary = TargetSummary::Compute(y, target);
  // Non-owning: `y` must outlive the returned quality (see header).
  const linalg::Matrix* targets = &y;
  return [targets, target, summary, params](
             const pattern::Intention&, const pattern::Extension& extension) {
    return DispersionCorrectedFamilyQuality(*targets, target, summary,
                                            extension, params);
  };
}

}  // namespace sisd::baseline
