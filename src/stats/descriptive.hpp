/// \file descriptive.hpp
/// \brief Descriptive statistics: online mean/variance (Welford), empirical
/// covariance matrices, quantiles and percentile split points.
///
/// The search layer uses `QuantileSplitPoints` to build the Cortana-style
/// condition pool (1/5..4/5 percentiles, paper §III); the model layer uses
/// empirical means/covariances to initialize the background distribution.

#ifndef SISD_STATS_DESCRIPTIVE_HPP_
#define SISD_STATS_DESCRIPTIVE_HPP_

#include <cstddef>
#include <limits>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace sisd::stats {

/// \brief Numerically stable one-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  size_t count() const { return count_; }

  /// Mean of the observations (0 when empty).
  double Mean() const { return mean_; }

  /// Population variance (divides by n; 0 when n < 1).
  double VariancePopulation() const;

  /// Sample variance (divides by n-1; 0 when n < 2).
  double VarianceSample() const;

  /// Population standard deviation.
  double StdDevPopulation() const;

  /// Minimum observation (+inf when empty).
  double Min() const { return min_; }

  /// Maximum observation (-inf when empty).
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Mean of `values` (0 for empty input).
double Mean(const std::vector<double>& values);

/// \brief Population variance of `values` (divides by n).
double VariancePopulation(const std::vector<double>& values);

/// \brief Column-wise mean of the rows of `y` (shape n x d -> d).
linalg::Vector ColumnMeans(const linalg::Matrix& y);

/// \brief Column-wise mean over the subset of rows in `rows`.
linalg::Vector ColumnMeans(const linalg::Matrix& y,
                           const std::vector<size_t>& rows);

/// \brief Empirical covariance (population, divides by n) of the rows of `y`.
linalg::Matrix CovarianceMatrix(const linalg::Matrix& y);

/// \brief Empirical covariance of the subset of rows in `rows`.
linalg::Matrix CovarianceMatrix(const linalg::Matrix& y,
                                const std::vector<size_t>& rows);

/// \brief Scatter matrix around a fixed `center`:
/// `sum_{i in rows} (y_i - center)(y_i - center)' / |rows|`.
linalg::Matrix ScatterAround(const linalg::Matrix& y,
                             const std::vector<size_t>& rows,
                             const linalg::Vector& center);

/// \brief Linear-interpolation quantile of `values` at `p` in [0, 1]
/// (type-7 / NumPy default). `values` need not be sorted; empty input aborts.
double Quantile(std::vector<double> values, double p);

/// \brief Cortana-style numeric split points: the `k` quantiles at
/// `1/(k+1), ..., k/(k+1)` (k = 4 gives the paper's 1/5..4/5 percentiles).
/// Duplicates (from ties) are removed; result is sorted ascending.
std::vector<double> QuantileSplitPoints(const std::vector<double>& values,
                                        int num_splits);

/// \brief Pearson correlation of two equally sized samples; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace sisd::stats

#endif  // SISD_STATS_DESCRIPTIVE_HPP_
