/// \file chi2_mixture.hpp
/// \brief Zhang (JASA 2005) approximation of positively weighted sums of
/// independent chi-square(1) variables — Eq. (18) of the paper.
///
/// Under the background model (after assimilating the location pattern), the
/// directional variance statistic of a subgroup is
/// `g = sum_i a_i * c_i` with `c_i ~ chi2(1)` i.i.d. and coefficients
/// `a_i = w' Sigma_i w / |I| > 0`. Zhang's three-cumulant matching
/// approximates `g ≈ alpha * chi2(m) + beta` with
///   alpha = A3 / A2,
///   beta  = A1 - A2^2 / A3,
///   m     = A2^3 / A3^2,
/// where `A_k = sum_i a_i^k`. When all coefficients are equal the
/// approximation is exact (`alpha = a`, `beta = 0`, `m = |I|`).

#ifndef SISD_STATS_CHI2_MIXTURE_HPP_
#define SISD_STATS_CHI2_MIXTURE_HPP_

#include <cstddef>
#include <vector>

namespace sisd::stats {

/// \brief The fitted affine-chi-square surrogate `alpha * chi2(m) + beta`.
struct Chi2MixtureApprox {
  double alpha = 0.0;  ///< scale (> 0 for valid coefficient sets)
  double beta = 0.0;   ///< shift
  double m = 0.0;      ///< (real-valued) degrees of freedom

  /// Power sums of the coefficients, kept for gradient computations.
  double a1 = 0.0;  ///< sum a_i
  double a2 = 0.0;  ///< sum a_i^2
  double a3 = 0.0;  ///< sum a_i^3

  /// Mean of the surrogate distribution (`alpha*m + beta` = A1 exactly).
  double MeanValue() const { return alpha * m + beta; }

  /// Variance of the surrogate (`2*alpha^2*m` = 2*A2 exactly).
  double VarianceValue() const { return 2.0 * alpha * alpha * m; }

  /// Third central moment of the surrogate (`8*alpha^3*m` = 8*A3 exactly).
  double ThirdCentralMoment() const { return 8.0 * alpha * alpha * alpha * m; }

  /// Negative log density of the surrogate at `g`.
  ///
  /// This is the spread-pattern Information Content (Eq. 19) up to the
  /// pattern bookkeeping. Returns +inf when `g <= beta` (outside support).
  /// Note the paper prints "+ alpha" where the affine change of variables
  /// actually contributes "+ log(alpha)"; we implement the correct form
  /// (see DESIGN.md §1).
  double NegLogPdf(double g) const;

  /// Log density (`-NegLogPdf`), -inf outside support.
  double LogPdf(double g) const;

  /// CDF of the surrogate at `g` via the regularized incomplete gamma.
  double Cdf(double g) const;
};

/// \brief Fits the Zhang surrogate to positive coefficients `a`.
///
/// All coefficients must be strictly positive and the vector non-empty;
/// this holds by construction for `a_i = w' Sigma_i w / |I|` with SPD
/// `Sigma_i` and unit `w`.
Chi2MixtureApprox FitChi2Mixture(const std::vector<double>& a);

/// \brief Fits the surrogate directly from precomputed power sums.
Chi2MixtureApprox FitChi2MixtureFromPowerSums(double a1, double a2, double a3);

}  // namespace sisd::stats

#endif  // SISD_STATS_CHI2_MIXTURE_HPP_
