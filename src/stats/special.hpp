/// \file special.hpp
/// \brief Special functions: Gaussian pdf/cdf/quantile, log-gamma, digamma,
/// regularized incomplete gamma, chi-square pdf/cdf.
///
/// The spread-pattern Information Content (Eq. 19) needs the chi-square log
/// pdf (via log-gamma) and its gradient w.r.t. the degrees of freedom (via
/// digamma); tests validate IC values against chi-square CDFs computed with
/// the regularized incomplete gamma function.

#ifndef SISD_STATS_SPECIAL_HPP_
#define SISD_STATS_SPECIAL_HPP_

#include <cstddef>

namespace sisd::stats {

/// \brief Standard normal probability density at `x`.
double NormalPdf(double x);

/// \brief Normal density with mean `mu` and standard deviation `sigma > 0`.
double NormalPdf(double x, double mu, double sigma);

/// \brief Standard normal cumulative distribution function.
double NormalCdf(double x);

/// \brief Normal CDF with mean `mu` and standard deviation `sigma > 0`.
double NormalCdf(double x, double mu, double sigma);

/// \brief Standard normal quantile (inverse CDF), `p` in (0, 1).
///
/// Acklam's rational approximation polished with one Newton step;
/// absolute error below 1e-9 over the full open interval.
double NormalQuantile(double p);

/// \brief Natural log of the Gamma function, `x > 0`. (Lanczos; matches
/// std::lgamma but kept local so the math is self-contained and portable.)
double LogGamma(double x);

/// \brief Digamma function psi(x) = d/dx log Gamma(x), `x > 0`.
double Digamma(double x);

/// \brief Regularized lower incomplete gamma P(a, x), `a > 0`, `x >= 0`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical-Recipes style with independent implementation).
double RegularizedGammaP(double a, double x);

/// \brief Chi-square pdf with `k > 0` degrees of freedom at `x`.
double ChiSquarePdf(double x, double k);

/// \brief Chi-square log-pdf with `k > 0` degrees of freedom at `x > 0`.
double ChiSquareLogPdf(double x, double k);

/// \brief Chi-square CDF with `k > 0` degrees of freedom.
double ChiSquareCdf(double x, double k);

/// \brief Error function (wraps std::erf; declared here for completeness).
double Erf(double x);

}  // namespace sisd::stats

#endif  // SISD_STATS_SPECIAL_HPP_
