file(REMOVE_RECURSE
  "CMakeFiles/sisd_stats.dir/chi2_mixture.cpp.o"
  "CMakeFiles/sisd_stats.dir/chi2_mixture.cpp.o.d"
  "CMakeFiles/sisd_stats.dir/descriptive.cpp.o"
  "CMakeFiles/sisd_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/sisd_stats.dir/kde.cpp.o"
  "CMakeFiles/sisd_stats.dir/kde.cpp.o.d"
  "CMakeFiles/sisd_stats.dir/special.cpp.o"
  "CMakeFiles/sisd_stats.dir/special.cpp.o.d"
  "libsisd_stats.a"
  "libsisd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
