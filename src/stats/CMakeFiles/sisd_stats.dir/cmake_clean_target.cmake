file(REMOVE_RECURSE
  "libsisd_stats.a"
)
