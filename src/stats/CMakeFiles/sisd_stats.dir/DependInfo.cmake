
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chi2_mixture.cpp" "src/stats/CMakeFiles/sisd_stats.dir/chi2_mixture.cpp.o" "gcc" "src/stats/CMakeFiles/sisd_stats.dir/chi2_mixture.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/sisd_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/sisd_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/kde.cpp" "src/stats/CMakeFiles/sisd_stats.dir/kde.cpp.o" "gcc" "src/stats/CMakeFiles/sisd_stats.dir/kde.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/sisd_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/sisd_stats.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/sisd_common.dir/DependInfo.cmake"
  "/root/repo/src/linalg/CMakeFiles/sisd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
