# Empty dependencies file for sisd_stats.
# This may be replaced when dependencies are built.
