#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.hpp"

namespace sisd::stats {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / double(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::VariancePopulation() const {
  if (count_ < 1) return 0.0;
  return m2_ / double(count_);
}

double RunningStats::VarianceSample() const {
  if (count_ < 2) return 0.0;
  return m2_ / double(count_ - 1);
}

double RunningStats::StdDevPopulation() const {
  return std::sqrt(VariancePopulation());
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / double(values.size());
}

double VariancePopulation(const std::vector<double>& values) {
  RunningStats rs;
  for (double v : values) rs.Add(v);
  return rs.VariancePopulation();
}

linalg::Vector ColumnMeans(const linalg::Matrix& y) {
  std::vector<size_t> rows(y.rows());
  for (size_t i = 0; i < y.rows(); ++i) rows[i] = i;
  return ColumnMeans(y, rows);
}

linalg::Vector ColumnMeans(const linalg::Matrix& y,
                           const std::vector<size_t>& rows) {
  SISD_CHECK(!rows.empty());
  linalg::Vector mean(y.cols());
  for (size_t i : rows) {
    const double* row = y.RowData(i);
    for (size_t c = 0; c < y.cols(); ++c) mean[c] += row[c];
  }
  mean /= double(rows.size());
  return mean;
}

linalg::Matrix CovarianceMatrix(const linalg::Matrix& y) {
  std::vector<size_t> rows(y.rows());
  for (size_t i = 0; i < y.rows(); ++i) rows[i] = i;
  return CovarianceMatrix(y, rows);
}

linalg::Matrix CovarianceMatrix(const linalg::Matrix& y,
                                const std::vector<size_t>& rows) {
  const linalg::Vector mean = ColumnMeans(y, rows);
  return ScatterAround(y, rows, mean);
}

linalg::Matrix ScatterAround(const linalg::Matrix& y,
                             const std::vector<size_t>& rows,
                             const linalg::Vector& center) {
  SISD_CHECK(!rows.empty());
  SISD_CHECK(center.size() == y.cols());
  const size_t d = y.cols();
  linalg::Matrix cov(d, d);
  linalg::Vector centered(d);
  for (size_t i : rows) {
    const double* row = y.RowData(i);
    for (size_t c = 0; c < d; ++c) centered[c] = row[c] - center[c];
    cov.AddOuter(centered, 1.0);
  }
  cov *= 1.0 / double(rows.size());
  return cov;
}

double Quantile(std::vector<double> values, double p) {
  SISD_CHECK(!values.empty());
  SISD_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double idx = p * double(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(idx));
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - double(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<double> QuantileSplitPoints(const std::vector<double>& values,
                                        int num_splits) {
  SISD_CHECK(num_splits >= 1);
  if (values.empty()) return {};
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> splits;
  splits.reserve(static_cast<size_t>(num_splits));
  for (int k = 1; k <= num_splits; ++k) {
    const double p = double(k) / double(num_splits + 1);
    const double idx = p * double(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(idx));
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - double(lo);
    splits.push_back(sorted[lo] * (1.0 - frac) + sorted[hi] * frac);
  }
  splits.erase(std::unique(splits.begin(), splits.end()), splits.end());
  return splits;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  SISD_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace sisd::stats
