/// \file kde.hpp
/// \brief Univariate Gaussian kernel density estimation.
///
/// Used by the Fig. 1 reproduction (crime-rate distribution over the full
/// data vs the subgroup) — the paper plots "Gaussian-kernel smoothed
/// estimates" of the target distribution.

#ifndef SISD_STATS_KDE_HPP_
#define SISD_STATS_KDE_HPP_

#include <cstddef>
#include <vector>

namespace sisd::stats {

/// \brief Gaussian kernel density estimator over a fixed sample.
class KernelDensity {
 public:
  /// Builds a KDE over `sample` with explicit bandwidth `h > 0`.
  KernelDensity(std::vector<double> sample, double bandwidth);

  /// Builds a KDE with Silverman's rule-of-thumb bandwidth
  /// `h = 0.9 * min(sd, IQR/1.34) * n^{-1/5}` (floored to a tiny positive
  /// value for degenerate samples).
  static KernelDensity WithSilvermanBandwidth(std::vector<double> sample);

  /// Density estimate at `x`.
  double Density(double x) const;

  /// Density estimates over an equally spaced grid of `num_points` points
  /// covering `[lo, hi]`.
  std::vector<double> DensityOnGrid(double lo, double hi,
                                    int num_points) const;

  /// The bandwidth in use.
  double bandwidth() const { return bandwidth_; }

  /// Number of sample points.
  size_t sample_size() const { return sample_.size(); }

 private:
  std::vector<double> sample_;
  double bandwidth_;
};

}  // namespace sisd::stats

#endif  // SISD_STATS_KDE_HPP_
