#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace sisd::stats {

KernelDensity::KernelDensity(std::vector<double> sample, double bandwidth)
    : sample_(std::move(sample)), bandwidth_(bandwidth) {
  SISD_CHECK(!sample_.empty());
  SISD_CHECK(bandwidth_ > 0.0);
}

KernelDensity KernelDensity::WithSilvermanBandwidth(
    std::vector<double> sample) {
  SISD_CHECK(!sample.empty());
  RunningStats rs;
  for (double v : sample) rs.Add(v);
  const double sd = std::sqrt(rs.VarianceSample());
  const double iqr =
      Quantile(sample, 0.75) - Quantile(sample, 0.25);
  double spread = sd;
  if (iqr > 0.0) spread = std::min(spread, iqr / 1.34);
  if (spread <= 0.0) spread = std::max(std::fabs(rs.Mean()), 1.0) * 1e-3;
  const double h =
      0.9 * spread * std::pow(double(sample.size()), -0.2);
  return KernelDensity(std::move(sample), std::max(h, 1e-12));
}

double KernelDensity::Density(double x) const {
  double acc = 0.0;
  for (double xi : sample_) {
    acc += NormalPdf((x - xi) / bandwidth_);
  }
  return acc / (double(sample_.size()) * bandwidth_);
}

std::vector<double> KernelDensity::DensityOnGrid(double lo, double hi,
                                                 int num_points) const {
  SISD_CHECK(num_points >= 2);
  SISD_CHECK(hi > lo);
  std::vector<double> out(static_cast<size_t>(num_points));
  const double step = (hi - lo) / double(num_points - 1);
  for (int i = 0; i < num_points; ++i) {
    out[static_cast<size_t>(i)] = Density(lo + step * i);
  }
  return out;
}

}  // namespace sisd::stats
