#include "stats/chi2_mixture.hpp"

#include <cmath>
#include <limits>

#include "common/status.hpp"
#include "stats/special.hpp"

namespace sisd::stats {

double Chi2MixtureApprox::NegLogPdf(double g) const {
  SISD_DCHECK(alpha > 0.0 && m > 0.0);
  const double standardized = (g - beta) / alpha;
  if (standardized <= 0.0) return std::numeric_limits<double>::infinity();
  // -log pdf of alpha*chi2(m)+beta at g:
  //   log(alpha) + log(2^{m/2} Gamma(m/2))
  //   - (m/2 - 1) log((g-beta)/alpha) + (g-beta)/(2 alpha).
  const double half_m = 0.5 * m;
  return std::log(alpha) + half_m * std::log(2.0) + LogGamma(half_m) -
         (half_m - 1.0) * std::log(standardized) + 0.5 * standardized;
}

double Chi2MixtureApprox::LogPdf(double g) const {
  const double neg = NegLogPdf(g);
  if (std::isinf(neg)) return -std::numeric_limits<double>::infinity();
  return -neg;
}

double Chi2MixtureApprox::Cdf(double g) const {
  SISD_DCHECK(alpha > 0.0 && m > 0.0);
  const double standardized = (g - beta) / alpha;
  if (standardized <= 0.0) return 0.0;
  return ChiSquareCdf(standardized, m);
}

Chi2MixtureApprox FitChi2Mixture(const std::vector<double>& a) {
  SISD_CHECK(!a.empty());
  double a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (double ai : a) {
    SISD_CHECK(ai > 0.0);
    a1 += ai;
    a2 += ai * ai;
    a3 += ai * ai * ai;
  }
  return FitChi2MixtureFromPowerSums(a1, a2, a3);
}

Chi2MixtureApprox FitChi2MixtureFromPowerSums(double a1, double a2,
                                              double a3) {
  SISD_CHECK(a1 > 0.0 && a2 > 0.0 && a3 > 0.0);
  Chi2MixtureApprox out;
  out.a1 = a1;
  out.a2 = a2;
  out.a3 = a3;
  out.alpha = a3 / a2;
  out.beta = a1 - a2 * a2 / a3;
  out.m = (a2 * a2 * a2) / (a3 * a3);
  return out;
}

}  // namespace sisd::stats
