/// \file interestingness.hpp
/// \brief Subjective Interestingness: Information Content and Description
/// Length of location and spread patterns (paper §II-C).
///
/// `SI = IC / DL` where IC is the negative log probability (density) of the
/// observed pattern statistic under the current background distribution and
/// `DL = gamma*|C| + eta` (+1 for spread patterns). The absolute SI value is
/// irrelevant; only the induced ranking matters (paper Remark 1), and the
/// paper fixes `eta = 1`, `gamma = 0.1`.

#ifndef SISD_SI_INTERESTINGNESS_HPP_
#define SISD_SI_INTERESTINGNESS_HPP_

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "model/background_model.hpp"
#include "pattern/extension.hpp"
#include "stats/chi2_mixture.hpp"

namespace sisd::si {

/// \brief Description-length parameters (paper Remark 1 defaults).
struct DescriptionLengthParams {
  double gamma = 0.1;  ///< cost per condition in the intention
  double eta = 1.0;    ///< fixed cost of presenting a pattern
};

/// \brief DL of a location pattern with `num_conditions` conditions.
double LocationDescriptionLength(size_t num_conditions,
                                 const DescriptionLengthParams& params);

/// \brief DL of a spread pattern: one extra term for the direction.
double SpreadDescriptionLength(size_t num_conditions,
                               const DescriptionLengthParams& params);

/// \brief Scored location pattern statistics.
struct LocationScore {
  double ic = 0.0;  ///< Eq. (13)
  double dl = 0.0;
  double si = 0.0;  ///< Eq. (14)
};

/// \brief Scored spread pattern statistics.
struct SpreadScore {
  double ic = 0.0;  ///< Eq. (19)
  double dl = 0.0;
  double si = 0.0;  ///< Eq. (20)
  stats::Chi2MixtureApprox approx;  ///< the fitted surrogate (diagnostics)
};

/// \brief IC of a location pattern: negative log density of the observed
/// subgroup mean under the model's marginal for the mean statistic.
///
/// `IC = 0.5*log((2 pi)^dy |Sigma_I|)
///       + 0.5*(fhat - mu_I)' Sigma_I^{-1} (fhat - mu_I)`
/// with `mu_I = sum mu_i/|I|`, `Sigma_I = sum Sigma_i/|I|^2`.
/// A fast path covers extensions inside a single parameter group (always the
/// case in the first iteration), reusing the group's cached factorization.
double LocationIC(const model::BackgroundModel& model,
                  const pattern::Extension& extension,
                  const linalg::Vector& empirical_mean);

/// \brief Scores a location pattern (IC, DL, SI).
LocationScore ScoreLocation(const model::BackgroundModel& model,
                            const pattern::Extension& extension,
                            const linalg::Vector& empirical_mean,
                            size_t num_conditions,
                            const DescriptionLengthParams& params);

/// \brief IC of a spread pattern along unit `w`, with observed variance
/// `empirical_variance` and anchor `anchor` (the subgroup's empirical mean).
///
/// Under the model the statistic is a weighted sum of chi-square(1)
/// variables with weights `a_i = w' Sigma_i w / |I|`; the density is
/// approximated by Zhang's `alpha*chi2(m)+beta` surrogate (Eq. 18). Per the
/// paper's footnote 3, the central approximation is used even when the
/// model's means do not coincide with the anchor (overlapping patterns).
double SpreadIC(const model::BackgroundModel& model,
                const pattern::Extension& extension, const linalg::Vector& w,
                double empirical_variance);

/// \brief Scores a spread pattern (IC, DL, SI).
SpreadScore ScoreSpread(const model::BackgroundModel& model,
                        const pattern::Extension& extension,
                        const linalg::Vector& w, double empirical_variance,
                        size_t num_conditions,
                        const DescriptionLengthParams& params);

/// \brief Fits the Zhang surrogate for the spread statistic of `extension`
/// along `w` under `model` (exposed for the optimizer and diagnostics).
stats::Chi2MixtureApprox FitSpreadSurrogate(
    const model::BackgroundModel& model, const pattern::Extension& extension,
    const linalg::Vector& w);

/// \brief Per-target-attribute IC of a location pattern: entry `t` is the
/// IC of the pattern restricted to target dimension `t` alone (the
/// univariate marginal of the subgroup-mean statistic).
///
/// This is the ranking the paper uses to explain patterns to the user:
/// "the most surprising species as ranked by SI" (Fig. 5), "the y-axis is
/// ranked by SI" (Fig. 8a). Note the paper's caveat applies: correlated
/// targets share information, so these per-attribute ICs do not add up to
/// the joint IC (Eq. 13 accounts for the covariance; this ranking does
/// not).
linalg::Vector PerAttributeLocationIC(const model::BackgroundModel& model,
                                      const pattern::Extension& extension,
                                      const linalg::Vector& empirical_mean);

/// \brief Indices of the target attributes sorted by decreasing
/// per-attribute IC (ties broken by index).
std::vector<size_t> RankAttributesByIC(const model::BackgroundModel& model,
                                       const pattern::Extension& extension,
                                       const linalg::Vector& empirical_mean);

}  // namespace sisd::si

#endif  // SISD_SI_INTERESTINGNESS_HPP_
