file(REMOVE_RECURSE
  "libsisd_si.a"
)
