# Empty dependencies file for sisd_si.
# This may be replaced when dependencies are built.
