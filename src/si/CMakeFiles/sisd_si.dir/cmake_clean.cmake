file(REMOVE_RECURSE
  "CMakeFiles/sisd_si.dir/evaluation_context.cpp.o"
  "CMakeFiles/sisd_si.dir/evaluation_context.cpp.o.d"
  "CMakeFiles/sisd_si.dir/interestingness.cpp.o"
  "CMakeFiles/sisd_si.dir/interestingness.cpp.o.d"
  "CMakeFiles/sisd_si.dir/list_gain.cpp.o"
  "CMakeFiles/sisd_si.dir/list_gain.cpp.o.d"
  "libsisd_si.a"
  "libsisd_si.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
