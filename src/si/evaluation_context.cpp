#include "si/evaluation_context.hpp"

#include <cmath>

namespace sisd::si {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

/// Cache-size backstop: signatures are data-dependent and in pathological
/// cases unbounded; dropping the cache merely costs recomputation.
constexpr size_t kMaxMarginalCacheEntries = 1u << 16;

}  // namespace

EvaluationContext::EvaluationContext(const model::BackgroundModel& model,
                                     const linalg::Matrix* targets)
    : model_(&model),
      targets_(targets),
      diff_(model.dim()),
      fsolve_(model.dim()),
      scratch_mean_(model.dim()) {
  counts_.reserve(model.num_groups() + 8);
  model.WarmGroupCaches();
}

double EvaluationContext::LocationIC(const pattern::Extension& extension,
                                     const linalg::Vector& empirical_mean) {
  SISD_CHECK(!extension.empty());
  if (model_->num_groups() == 1) {
    counts_.assign(1, extension.count());
  } else {
    model_->GroupCountsInto(extension, &counts_);
  }
  return ICFromCounts(extension.count(), empirical_mean);
}

double EvaluationContext::LocationICMasked(
    const pattern::Extension& a, const pattern::Extension& b, size_t count,
    const linalg::Vector& empirical_mean) {
  SISD_CHECK(count > 0);
  if (model_->num_groups() == 1) {
    counts_.assign(1, count);
  } else {
    model_->GroupCountsMaskedInto(a, b, &counts_);
  }
  return ICFromCounts(count, empirical_mean);
}

LocationScore EvaluationContext::ScoreLocation(
    const pattern::Extension& extension, const linalg::Vector& empirical_mean,
    size_t num_conditions, const DescriptionLengthParams& params) {
  LocationScore score;
  score.ic = LocationIC(extension, empirical_mean);
  score.dl = LocationDescriptionLength(num_conditions, params);
  score.si = score.ic / score.dl;
  return score;
}

LocationScore EvaluationContext::ScoreLocationMasked(
    const pattern::Extension& a, const pattern::Extension& b, size_t count,
    const linalg::Vector& empirical_mean, size_t num_conditions,
    const DescriptionLengthParams& params) {
  LocationScore score;
  score.ic = LocationICMasked(a, b, count, empirical_mean);
  score.dl = LocationDescriptionLength(num_conditions, params);
  score.si = score.ic / score.dl;
  return score;
}

void EvaluationContext::SubgroupMeanInto(const pattern::Extension& extension,
                                         linalg::Vector* out) const {
  SISD_CHECK(targets_ != nullptr);
  pattern::SubgroupMeanInto(*targets_, extension, out);
}

void EvaluationContext::MaskedSubgroupMeanInto(const pattern::Extension& a,
                                               const pattern::Extension& b,
                                               size_t count,
                                               linalg::Vector* out) const {
  SISD_CHECK(targets_ != nullptr);
  pattern::MaskedSubgroupMeanInto(*targets_, a, b, count, out);
}

kernels::MaskedMoments EvaluationContext::MaskedTargetMomentsAnd(
    const pattern::Extension& a, const pattern::Extension& b) const {
  SISD_CHECK(targets_ != nullptr);
  SISD_CHECK(targets_->cols() == 1);
  SISD_CHECK(a.universe_size() == targets_->rows());
  SISD_CHECK(a.universe_size() == b.universe_size());
  a.DebugCheckTailMasked();
  b.DebugCheckTailMasked();
  return kernels::MaskedMomentsAnd(targets_->RowData(0), a.blocks().data(),
                                   b.blocks().data(), a.blocks().size());
}

double EvaluationContext::ICFromCounts(size_t total,
                                       const linalg::Vector& empirical_mean) {
  const size_t dy = model_->dim();
  const double size = double(total);

  size_t single_group = 0;
  size_t groups_hit = 0;
  for (size_t g = 0; g < counts_.size(); ++g) {
    if (counts_[g] > 0) {
      ++groups_hit;
      single_group = g;
    }
  }
  SISD_CHECK(groups_hit > 0);

  if (groups_hit == 1) {
    // Sigma_I = Sigma_g / |I|  =>  logdet = logdet(Sigma_g) - dy*log|I|,
    // and (x)'(Sigma_g/|I|)^{-1}(x) = |I| * x' Sigma_g^{-1} x.
    diff_.AssignDifference(empirical_mean, model_->group(single_group).mu);
    const double quad =
        size *
        model_->GroupCholesky(single_group).InverseQuadraticForm(diff_,
                                                                 &fsolve_);
    const double logdet =
        model_->GroupLogDetSigma(single_group) - double(dy) * std::log(size);
    return 0.5 * (double(dy) * kLog2Pi + logdet) + 0.5 * quad;
  }

  const MarginalEntry& marginal = MarginalForCounts(size);
  diff_.AssignDifference(empirical_mean, marginal.mean);
  return 0.5 * (double(dy) * kLog2Pi + marginal.logdet) +
         0.5 * marginal.chol.InverseQuadraticForm(diff_, &fsolve_);
}

const EvaluationContext::MarginalEntry& EvaluationContext::MarginalForCounts(
    double size) {
  const auto it = marginal_cache_.find(counts_);
  if (it != marginal_cache_.end()) return it->second;

  model::MeanStatisticMarginal marginal =
      model_->MeanStatMarginalFromCounts(counts_, size);
  Result<linalg::Cholesky> chol = linalg::Cholesky::Compute(marginal.cov);
  chol.status().CheckOK();
  MarginalEntry entry{std::move(marginal.mean),
                      std::move(chol).MoveValue(), 0.0};
  entry.logdet = entry.chol.LogDeterminant();

  if (marginal_cache_.size() >= kMaxMarginalCacheEntries) {
    marginal_cache_.clear();
  }
  return marginal_cache_.emplace(counts_, std::move(entry)).first->second;
}

}  // namespace sisd::si
