/// \file evaluation_context.hpp
/// \brief Allocation-free SI scoring context for the batch evaluation
/// engine.
///
/// Beam search evaluates tens of thousands of candidate subgroups per level
/// (paper §IV). Scoring a candidate through the plain free functions in
/// interestingness.hpp heap-allocates a subgroup-mean vector, a per-group
/// count vector and — once the model has several parameter groups — a fresh
/// Cholesky factorization of the mean-statistic covariance. An
/// `EvaluationContext` owns reusable scratch buffers and a cache of marginal
/// factorizations keyed by the per-group count signature, so repeated
/// scoring is free of per-candidate heap allocations (the cache allocates
/// only on a signature miss).
///
/// A context is bound to one immutable model snapshot. It is NOT
/// thread-safe; parallel scoring uses one context per worker thread (the
/// scored values are identical regardless of which context computes them,
/// which is what makes multi-threaded search bit-deterministic).

#ifndef SISD_SI_EVALUATION_CONTEXT_HPP_
#define SISD_SI_EVALUATION_CONTEXT_HPP_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kernels/kernels.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "model/background_model.hpp"
#include "pattern/extension.hpp"
#include "pattern/patterns.hpp"
#include "si/interestingness.hpp"

namespace sisd::si {

/// \brief Reusable scratch + marginal-factorization cache for location-SI
/// scoring against one background-model snapshot.
class EvaluationContext {
 public:
  /// Binds the context to `model` (kept by reference; must outlive the
  /// context and not be mutated while the context is in use). `targets`
  /// (may be null) enables the subgroup-mean kernels. Warms the model's
  /// per-group Cholesky caches so later reads are const and thread-safe.
  explicit EvaluationContext(const model::BackgroundModel& model,
                             const linalg::Matrix* targets = nullptr);

  EvaluationContext(const EvaluationContext&) = delete;
  EvaluationContext& operator=(const EvaluationContext&) = delete;
  EvaluationContext(EvaluationContext&&) = default;
  EvaluationContext& operator=(EvaluationContext&&) = default;

  /// The bound model snapshot.
  const model::BackgroundModel& model() const { return *model_; }

  /// IC of a location pattern (Eq. 13). Bit-identical to the free function
  /// `si::LocationIC`, without its per-call allocations.
  double LocationIC(const pattern::Extension& extension,
                    const linalg::Vector& empirical_mean);

  /// IC of the virtual extension `a & b` with `count = |a & b| > 0`,
  /// computed with fused masked popcounts (nothing materialized).
  double LocationICMasked(const pattern::Extension& a,
                          const pattern::Extension& b, size_t count,
                          const linalg::Vector& empirical_mean);

  /// Full (IC, DL, SI) score; bit-identical to `si::ScoreLocation`.
  LocationScore ScoreLocation(const pattern::Extension& extension,
                              const linalg::Vector& empirical_mean,
                              size_t num_conditions,
                              const DescriptionLengthParams& params);

  /// Masked-variant of `ScoreLocation` over the virtual extension `a & b`.
  LocationScore ScoreLocationMasked(const pattern::Extension& a,
                                    const pattern::Extension& b, size_t count,
                                    const linalg::Vector& empirical_mean,
                                    size_t num_conditions,
                                    const DescriptionLengthParams& params);

  /// Empirical subgroup mean into `*out` (requires `targets`).
  void SubgroupMeanInto(const pattern::Extension& extension,
                        linalg::Vector* out) const;

  /// Empirical mean over `a & b` into `*out` (requires `targets`).
  void MaskedSubgroupMeanInto(const pattern::Extension& a,
                              const pattern::Extension& b, size_t count,
                              linalg::Vector* out) const;

  /// Fused count + sum + sum-of-squares over the virtual extension `a & b`
  /// for univariate targets (requires `targets` with one column). A single
  /// pass over the target column; `.sum` is bit-identical to the sum the
  /// masked subgroup-mean path computes (same lane-contract kernel), and
  /// `.count` doubles as an integrity check against the batch's popcount.
  kernels::MaskedMoments MaskedTargetMomentsAnd(
      const pattern::Extension& a, const pattern::Extension& b) const;

  /// True iff the bound targets are a single contiguous column, enabling
  /// the fused `MaskedTargetMomentsAnd` fast path.
  bool has_univariate_targets() const {
    return targets_ != nullptr && targets_->cols() == 1;
  }

  /// Scratch mean buffer callers may use between scoring calls (the scoring
  /// methods never touch it).
  linalg::Vector* scratch_mean() { return &scratch_mean_; }

  /// Number of cached marginal factorizations (diagnostics).
  size_t marginal_cache_size() const { return marginal_cache_.size(); }

 private:
  /// Marginal of the mean statistic for one per-group count signature:
  /// mean, Cholesky factor of the covariance, and its log-determinant.
  struct MarginalEntry {
    linalg::Vector mean;
    linalg::Cholesky chol;
    double logdet = 0.0;
  };

  struct CountsHash {
    size_t operator()(const std::vector<size_t>& counts) const {
      size_t h = 1469598103934665603ull;
      for (size_t c : counts) {
        h ^= c;
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  /// IC from the per-group counts currently in `counts_` (sum = `total`).
  double ICFromCounts(size_t total, const linalg::Vector& empirical_mean);

  /// Cached marginal for the signature in `counts_` (computed on miss).
  const MarginalEntry& MarginalForCounts(double size);

  const model::BackgroundModel* model_;
  const linalg::Matrix* targets_;

  std::vector<size_t> counts_;  ///< per-group count scratch
  linalg::Vector diff_;         ///< mean-offset scratch (dy)
  linalg::Vector fsolve_;       ///< forward-solve scratch (dy)
  linalg::Vector scratch_mean_;  ///< caller-visible mean buffer (dy)

  /// Multi-group marginals keyed by the per-group count signature. The
  /// group-count signature fully determines the marginal (mean and
  /// covariance are count-weighted sums of the group parameters), so one
  /// factorization serves every candidate sharing the signature.
  std::unordered_map<std::vector<size_t>, MarginalEntry, CountsHash>
      marginal_cache_;
};

}  // namespace sisd::si

#endif  // SISD_SI_EVALUATION_CONTEXT_HPP_
