/// \file list_gain.hpp
/// \brief MDL-style compression gain for subgroup *lists* (SSD++ family:
/// Proença et al., "Discovering outstanding subgroup lists for numeric
/// targets using MDL").
///
/// A subgroup list routes each row to the first rule whose extension
/// contains it; rows no rule captures fall through to the *default rule*,
/// the dataset-marginal normal model. Appending a rule pays a model cost
/// (conditions + per-dimension parameters) and earns back the data bits the
/// rule's local normal model saves over the default model on the rows it
/// captures. This header holds the *shared arithmetic*: the greedy engine
/// (search/list_miner) and the naive differential reference both compute
/// gain through `ListGainFromMoments` from kernel-produced moments, so
/// their outputs are bit-identical whenever their moments are — which the
/// kernel lane contract guarantees (see kernels/kernels.hpp: masked lanes
/// are unobservable, so moments over `a & b` equal moments over the
/// materialized intersection, bit for bit).
///
/// All costs are in nats (natural log), matching the SI statistics.

#ifndef SISD_SI_LIST_GAIN_HPP_
#define SISD_SI_LIST_GAIN_HPP_

#include <cstddef>

#include "kernels/kernels.hpp"
#include "linalg/vector.hpp"

namespace sisd::si {

/// \brief Per-rule local model: an independent normal per target dimension
/// (the SSD++ rule statistic; diagonal by construction).
struct LocalNormalModel {
  linalg::Vector mean;      ///< per-dimension ML mean of the captured rows
  linalg::Vector variance;  ///< per-dimension ML variance (floored)

  bool operator==(const LocalNormalModel& other) const {
    return mean == other.mean && variance == other.variance;
  }
};

/// \brief Knobs of the list-gain criterion.
struct ListGainParams {
  /// Model cost per condition of a rule's intention (nats).
  double alpha = 0.5;
  /// Fixed model cost per rule (nats).
  double beta = 1.0;
  /// Lower bound applied to every fitted variance; keeps the criterion
  /// finite on constant targets (a zero-variance rule cannot claim
  /// infinite compression).
  double variance_floor = 1e-9;
  /// Divide the gain by the captured count (compression per captured
  /// instance, the SSD++ "normalized gain" that resists tiny-but-perfect
  /// rules). The sign of the gain is unaffected.
  bool normalized = true;
};

/// \brief Fits `out` from per-dimension moments of one row set: ML mean and
/// floored ML variance per dimension. `moments[j].count` must be equal for
/// all `j` (same mask) and positive.
void FitLocalNormalModel(const kernels::MaskedMoments* moments, size_t dy,
                         double variance_floor, LocalNormalModel* out);

/// \brief Negative log-likelihood (nats) of the rows summarized by
/// `moments` under an `N(mean, variance)` code — the data cost of routing
/// those rows to a normal model. Exposed so tests can audit the gain
/// decomposition.
double NormalDataCost(const kernels::MaskedMoments& moments, double mean,
                      double variance);

/// \brief List-level compression gain of one candidate rule.
///
/// `moments[j]` are the kernel moments of target dimension `j` over the
/// rows the rule would *capture* (its extension intersected with the rows
/// not yet covered by the list); all counts are equal. The gain is the data
/// bits saved by re-routing those rows from `default_model` to the rule's
/// own fitted normal model, minus the rule's model cost
/// (`alpha * num_conditions + beta + dy * log(count)` — half a log(count)
/// per fitted parameter, two parameters per dimension), optionally
/// normalized by the captured count. Deterministic: fixed dimension order,
/// no reassociation.
double ListGainFromMoments(const kernels::MaskedMoments* moments, size_t dy,
                           const LocalNormalModel& default_model,
                           size_t num_conditions,
                           const ListGainParams& params);

}  // namespace sisd::si

#endif  // SISD_SI_LIST_GAIN_HPP_
