#include "si/list_gain.hpp"

#include <cmath>
#include <limits>

#include "common/status.hpp"

namespace sisd::si {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Floored ML variance from moments: `q/c - m*m`, clamped to the floor.
/// The `!(v > floor)` form also catches NaN (non-finite targets) — the
/// floor is a safe, finite fallback either way. Both the model fit and the
/// gain use this exact expression, so a fitted rule model always agrees
/// bit-for-bit with the variance its gain was computed from.
double FlooredVariance(const kernels::MaskedMoments& moments, double mean,
                       double count, double floor) {
  double v = moments.sum_squares / count - mean * mean;
  if (!(v > floor)) v = floor;
  return v;
}

}  // namespace

void FitLocalNormalModel(const kernels::MaskedMoments* moments, size_t dy,
                         double variance_floor, LocalNormalModel* out) {
  SISD_CHECK(out != nullptr);
  out->mean = linalg::Vector(dy);
  out->variance = linalg::Vector(dy);
  if (dy == 0) return;
  SISD_CHECK(moments[0].count > 0);
  const double c = double(moments[0].count);
  for (size_t j = 0; j < dy; ++j) {
    const double m = moments[j].sum / c;
    out->mean[j] = m;
    out->variance[j] = FlooredVariance(moments[j], m, c, variance_floor);
  }
}

double NormalDataCost(const kernels::MaskedMoments& moments, double mean,
                      double variance) {
  const double c = double(moments.count);
  // -log N(y | mean, variance) summed over the rows, from sufficient
  // statistics: sum (y - mean)^2 = q - 2*mean*s + c*mean^2.
  return 0.5 * c * std::log(kTwoPi * variance) +
         (moments.sum_squares - 2.0 * mean * moments.sum +
          c * mean * mean) /
             (2.0 * variance);
}

double ListGainFromMoments(const kernels::MaskedMoments* moments, size_t dy,
                           const LocalNormalModel& default_model,
                           size_t num_conditions,
                           const ListGainParams& params) {
  if (dy == 0 || moments[0].count == 0) {
    return -std::numeric_limits<double>::infinity();
  }
  const double c = double(moments[0].count);
  double gain_data = 0.0;
  for (size_t j = 0; j < dy; ++j) {
    const double m = moments[j].sum / c;
    const double v = FlooredVariance(moments[j], m, c, params.variance_floor);
    const double default_cost = NormalDataCost(
        moments[j], default_model.mean[j], default_model.variance[j]);
    const double local_cost = NormalDataCost(moments[j], m, v);
    gain_data += default_cost - local_cost;
  }
  // BIC-style model cost: alpha per condition, beta per rule, and half a
  // log(count) for each of the 2*dy fitted parameters.
  const double model_cost = params.alpha * double(num_conditions) +
                            params.beta + double(dy) * std::log(c);
  double gain = gain_data - model_cost;
  if (params.normalized) gain /= c;
  return gain;
}

}  // namespace sisd::si
