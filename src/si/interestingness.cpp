#include "si/interestingness.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/cholesky.hpp"
#include "si/evaluation_context.hpp"

namespace sisd::si {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

}  // namespace

double LocationDescriptionLength(size_t num_conditions,
                                 const DescriptionLengthParams& params) {
  return params.gamma * double(num_conditions) + params.eta;
}

double SpreadDescriptionLength(size_t num_conditions,
                               const DescriptionLengthParams& params) {
  return params.gamma * double(num_conditions) + params.eta + 1.0;
}

double LocationIC(const model::BackgroundModel& model,
                  const pattern::Extension& extension,
                  const linalg::Vector& empirical_mean) {
  // Thin wrapper over the allocation-free engine path; batch callers hold a
  // long-lived EvaluationContext instead of paying its setup per call.
  EvaluationContext context(model);
  return context.LocationIC(extension, empirical_mean);
}

LocationScore ScoreLocation(const model::BackgroundModel& model,
                            const pattern::Extension& extension,
                            const linalg::Vector& empirical_mean,
                            size_t num_conditions,
                            const DescriptionLengthParams& params) {
  EvaluationContext context(model);
  return context.ScoreLocation(extension, empirical_mean, num_conditions,
                               params);
}

stats::Chi2MixtureApprox FitSpreadSurrogate(
    const model::BackgroundModel& model, const pattern::Extension& extension,
    const linalg::Vector& w) {
  SISD_CHECK(!extension.empty());
  const double size = double(extension.count());
  const std::vector<size_t> counts = model.GroupCounts(extension);
  double a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (size_t g = 0; g < counts.size(); ++g) {
    if (counts[g] == 0) continue;
    const double a = model.group(g).sigma.QuadraticForm(w) / size;
    SISD_CHECK(a > 0.0);
    const double c = double(counts[g]);
    a1 += c * a;
    a2 += c * a * a;
    a3 += c * a * a * a;
  }
  return stats::FitChi2MixtureFromPowerSums(a1, a2, a3);
}

double SpreadIC(const model::BackgroundModel& model,
                const pattern::Extension& extension, const linalg::Vector& w,
                double empirical_variance) {
  const stats::Chi2MixtureApprox approx =
      FitSpreadSurrogate(model, extension, w);
  return approx.NegLogPdf(empirical_variance);
}

linalg::Vector PerAttributeLocationIC(const model::BackgroundModel& model,
                                      const pattern::Extension& extension,
                                      const linalg::Vector& empirical_mean) {
  SISD_CHECK(!extension.empty());
  SISD_CHECK(empirical_mean.size() == model.dim());
  const model::MeanStatisticMarginal marginal =
      model.MeanStatMarginal(extension);
  linalg::Vector ic(model.dim());
  for (size_t t = 0; t < model.dim(); ++t) {
    const double var = marginal.cov(t, t);
    SISD_DCHECK(var > 0.0);
    const double diff = empirical_mean[t] - marginal.mean[t];
    ic[t] = 0.5 * (kLog2Pi + std::log(var)) + 0.5 * diff * diff / var;
  }
  return ic;
}

std::vector<size_t> RankAttributesByIC(const model::BackgroundModel& model,
                                       const pattern::Extension& extension,
                                       const linalg::Vector& empirical_mean) {
  const linalg::Vector ic =
      PerAttributeLocationIC(model, extension, empirical_mean);
  std::vector<size_t> order(model.dim());
  for (size_t t = 0; t < order.size(); ++t) order[t] = t;
  std::stable_sort(order.begin(), order.end(),
                   [&ic](size_t a, size_t b) { return ic[a] > ic[b]; });
  return order;
}

SpreadScore ScoreSpread(const model::BackgroundModel& model,
                        const pattern::Extension& extension,
                        const linalg::Vector& w, double empirical_variance,
                        size_t num_conditions,
                        const DescriptionLengthParams& params) {
  SpreadScore score;
  score.approx = FitSpreadSurrogate(model, extension, w);
  score.ic = score.approx.NegLogPdf(empirical_variance);
  score.dl = SpreadDescriptionLength(num_conditions, params);
  score.si = score.ic / score.dl;
  return score;
}

}  // namespace sisd::si
