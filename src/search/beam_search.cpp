#include "search/beam_search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

namespace sisd::search {

namespace {

using Clock = std::chrono::steady_clock;

/// Beam entry: intention as pool-condition indices (sorted = canonical).
struct BeamEntry {
  std::vector<uint32_t> condition_ids;
  pattern::Extension extension{0};
  double quality = -std::numeric_limits<double>::infinity();
};

/// Hash for sorted condition-id vectors (FNV-1a over the bytes).
struct IdVectorHash {
  size_t operator()(const std::vector<uint32_t>& ids) const {
    size_t h = 1469598103934665603ull;
    for (uint32_t id : ids) {
      h ^= id;
      h *= 1099511628211ull;
    }
    return h;
  }
};

pattern::Intention MakeIntention(const ConditionPool& pool,
                                 const std::vector<uint32_t>& ids) {
  std::vector<pattern::Condition> conditions;
  conditions.reserve(ids.size());
  for (uint32_t id : ids) conditions.push_back(pool.condition(id));
  return pattern::Intention(std::move(conditions));
}

/// Bounded best-list with canonical-signature dedup.
class TopList {
 public:
  TopList(size_t capacity) : capacity_(capacity) {}

  void Offer(const std::vector<uint32_t>& ids,
             const pattern::Extension& extension, double quality) {
    if (entries_.size() >= capacity_ && quality <= WorstQuality()) return;
    if (!seen_.insert(ids).second) return;
    BeamEntry entry;
    entry.condition_ids = ids;
    entry.extension = extension;
    entry.quality = quality;
    entries_.push_back(std::move(entry));
    std::push_heap(entries_.begin(), entries_.end(), BetterQuality);
    if (entries_.size() > capacity_) {
      std::pop_heap(entries_.begin(), entries_.end(), BetterQuality);
      seen_erase_candidates_.push_back(
          std::move(entries_.back().condition_ids));
      entries_.pop_back();
    }
  }

  std::vector<BeamEntry> SortedDescending() {
    std::vector<BeamEntry> out = entries_;
    std::sort(out.begin(), out.end(), [](const BeamEntry& a,
                                         const BeamEntry& b) {
      return a.quality > b.quality;
    });
    return out;
  }

 private:
  /// Min-heap comparator on quality (heap root = worst entry).
  static bool BetterQuality(const BeamEntry& a, const BeamEntry& b) {
    return a.quality > b.quality;
  }

  double WorstQuality() const {
    return entries_.empty()
               ? -std::numeric_limits<double>::infinity()
               : entries_.front().quality;
  }

  size_t capacity_;
  std::vector<BeamEntry> entries_;  // min-heap on quality
  std::unordered_set<std::vector<uint32_t>, IdVectorHash> seen_;
  // Signatures evicted from the list stay in `seen_` on purpose: an evicted
  // candidate had lower quality than everything kept, so re-offering it can
  // never improve the list. Kept alive here only to document the decision.
  std::vector<std::vector<uint32_t>> seen_erase_candidates_;
};

}  // namespace

SearchResult BeamSearch(const data::DataTable& table,
                        const ConditionPool& pool, const SearchConfig& config,
                        const QualityFunction& quality) {
  SISD_CHECK(config.beam_width >= 1);
  SISD_CHECK(config.max_depth >= 1);
  const size_t n = table.num_rows();
  // Empty extensions are never valid subgroups (their statistics are
  // undefined), so the coverage floor is at least 1.
  const size_t min_coverage = std::max<size_t>(config.min_coverage, 1);
  const size_t max_coverage = static_cast<size_t>(
      config.max_coverage_fraction * double(n));

  SearchResult result;
  TopList top_list(config.top_k);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::isfinite(config.time_budget_seconds)
                                 ? config.time_budget_seconds
                                 : 1e9));

  std::unordered_set<std::vector<uint32_t>, IdVectorHash> evaluated;
  std::vector<BeamEntry> beam;

  // Level 1 candidates: every pool condition. Deeper levels: beam x pool.
  for (int depth = 1; depth <= config.max_depth; ++depth) {
    TopList level_best(static_cast<size_t>(config.beam_width));
    const std::vector<BeamEntry>* parents = nullptr;
    BeamEntry root;  // empty intention (depth-1 parent)
    std::vector<BeamEntry> root_vec;
    if (depth == 1) {
      root.extension = pattern::Extension(n, /*full=*/true);
      root_vec.push_back(std::move(root));
      parents = &root_vec;
    } else {
      parents = &beam;
    }
    if (parents->empty()) break;

    for (const BeamEntry& parent : *parents) {
      if (Clock::now() >= deadline) {
        result.hit_time_budget = true;
        break;
      }
      // Reconstruct the parent's intention once for the constraint checks.
      pattern::Intention parent_intention =
          MakeIntention(pool, parent.condition_ids);
      for (uint32_t cid = 0; cid < pool.size(); ++cid) {
        const pattern::Condition& cond = pool.condition(cid);
        if (!parent_intention.AllowsRefinementWith(cond)) continue;
        std::vector<uint32_t> ids = parent.condition_ids;
        ids.insert(std::upper_bound(ids.begin(), ids.end(), cid), cid);
        if (!evaluated.insert(ids).second) continue;

        pattern::Extension extension =
            pattern::Extension::Intersect(parent.extension,
                                          pool.extension(cid));
        if (extension.count() < min_coverage ||
            extension.count() > max_coverage || extension.count() == n) {
          continue;
        }
        const pattern::Intention intention = MakeIntention(pool, ids);
        const double q = quality(intention, extension);
        ++result.num_evaluated;
        if (q == -std::numeric_limits<double>::infinity()) continue;
        level_best.Offer(ids, extension, q);
        top_list.Offer(ids, extension, q);
      }
      if (result.hit_time_budget) break;
    }
    beam = level_best.SortedDescending();
    if (result.hit_time_budget) break;
  }

  for (BeamEntry& entry : top_list.SortedDescending()) {
    ScoredSubgroup scored;
    scored.intention = MakeIntention(pool, entry.condition_ids);
    scored.extension = std::move(entry.extension);
    scored.quality = entry.quality;
    result.top.push_back(std::move(scored));
  }
  return result;
}

}  // namespace sisd::search
