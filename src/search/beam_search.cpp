#include "search/beam_search.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "search/thread_pool.hpp"

namespace sisd::search {

namespace {

using Clock = std::chrono::steady_clock;

/// Scoring (and generation) chunk size: the wall-clock budget is checked
/// once per chunk instead of per candidate (`steady_clock::now()` is
/// measurable on the hot path).
constexpr size_t kCandidateChunk = 256;

/// Beam entry: intention as pool-condition indices (sorted = canonical).
struct BeamEntry {
  std::vector<uint32_t> condition_ids;
  pattern::Extension extension{0};
  double quality = -std::numeric_limits<double>::infinity();
};

/// Hash for sorted condition-id vectors (FNV-1a over the bytes).
struct IdVectorHash {
  size_t operator()(const std::vector<uint32_t>& ids) const {
    size_t h = 1469598103934665603ull;
    for (uint32_t id : ids) {
      h ^= id;
      h *= 1099511628211ull;
    }
    return h;
  }
};

pattern::Intention MakeIntention(const ConditionPool& pool,
                                 const std::vector<uint32_t>& ids) {
  std::vector<pattern::Condition> conditions;
  conditions.reserve(ids.size());
  for (uint32_t id : ids) conditions.push_back(pool.condition(id));
  return pattern::Intention(std::move(conditions));
}

/// Bounded best-list with canonical-signature dedup.
class TopList {
 public:
  TopList(size_t capacity) : capacity_(capacity) {}

  /// True iff an offer with this quality could enter the list (the
  /// candidate-materialization gate: extensions are only built for
  /// candidates some list would accept).
  bool WouldAccept(double quality) const {
    return entries_.size() < capacity_ || quality > WorstQuality();
  }

  void Offer(const std::vector<uint32_t>& ids,
             const pattern::Extension& extension, double quality) {
    if (entries_.size() >= capacity_ && quality <= WorstQuality()) return;
    if (!seen_.insert(ids).second) return;
    BeamEntry entry;
    entry.condition_ids = ids;
    entry.extension = extension;
    entry.quality = quality;
    entries_.push_back(std::move(entry));
    std::push_heap(entries_.begin(), entries_.end(), BetterQuality);
    if (entries_.size() > capacity_) {
      std::pop_heap(entries_.begin(), entries_.end(), BetterQuality);
      seen_erase_candidates_.push_back(
          std::move(entries_.back().condition_ids));
      entries_.pop_back();
    }
  }

  /// Consumes the list: entries are moved out (bitset copies are not free),
  /// leaving it empty.
  std::vector<BeamEntry> SortedDescending() {
    std::vector<BeamEntry> out = std::move(entries_);
    entries_.clear();
    std::sort(out.begin(), out.end(), [](const BeamEntry& a,
                                         const BeamEntry& b) {
      return a.quality > b.quality;
    });
    return out;
  }

 private:
  /// Min-heap comparator on quality (heap root = worst entry).
  static bool BetterQuality(const BeamEntry& a, const BeamEntry& b) {
    return a.quality > b.quality;
  }

  double WorstQuality() const {
    return entries_.empty()
               ? -std::numeric_limits<double>::infinity()
               : entries_.front().quality;
  }

  size_t capacity_;
  std::vector<BeamEntry> entries_;  // min-heap on quality
  std::unordered_set<std::vector<uint32_t>, IdVectorHash> seen_;
  // Signatures evicted from the list stay in `seen_` on purpose: an evicted
  // candidate had lower quality than everything kept, so re-offering it can
  // never improve the list. Kept alive here only to document the decision.
  std::vector<std::vector<uint32_t>> seen_erase_candidates_;
};

/// Adapter scoring candidates through a legacy `QualityFunction`. The
/// callback protocol materializes the extension and reconstructs the
/// intention per candidate (what the batch protocol exists to avoid), and
/// arbitrary callbacks are not assumed thread-safe, so this evaluator is
/// single-threaded.
class CallbackEvaluator final : public BatchEvaluator {
 public:
  explicit CallbackEvaluator(const QualityFunction& quality)
      : quality_(&quality) {}

  void ScoreChunk(const CandidateBatch& batch, size_t begin, size_t end,
                  size_t worker, double* scores) override {
    (void)worker;
    for (size_t i = begin; i < end; ++i) {
      const CandidateBatch::Item& item = batch.items[i];
      const pattern::Extension extension = pattern::Extension::Intersect(
          batch.parent_extension(item), batch.condition_extension(item));
      const pattern::Intention intention =
          MakeIntention(*batch.pool, batch.ids[i]);
      scores[i] = (*quality_)(intention, extension);
    }
  }

 private:
  const QualityFunction* quality_;
};

}  // namespace

SearchResult BeamSearch(const data::DataTable& table,
                        const ConditionPool& pool, const SearchConfig& config,
                        BatchEvaluator& evaluator,
                        ThreadPool* shared_workers) {
  SISD_CHECK(config.beam_width >= 1);
  SISD_CHECK(config.max_depth >= 1);
  const size_t n = table.num_rows();
  // Empty extensions are never valid subgroups (their statistics are
  // undefined), so the coverage floor is at least 1.
  const size_t min_coverage = std::max<size_t>(config.min_coverage, 1);
  const size_t max_coverage = static_cast<size_t>(
      config.max_coverage_fraction * double(n));

  const size_t num_workers =
      evaluator.SupportsParallelScoring()
          ? (shared_workers != nullptr
                 ? shared_workers->num_workers()
                 : ThreadPool::ResolveNumThreads(config.num_threads))
          : 1;
  evaluator.Prepare(num_workers);
  std::optional<ThreadPool> local_workers;
  ThreadPool* workers = nullptr;
  if (num_workers > 1) {
    if (shared_workers != nullptr) {
      workers = shared_workers;
    } else {
      local_workers.emplace(num_workers);
      workers = &*local_workers;
    }
  }

  SearchResult result;
  TopList top_list(config.top_k);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::isfinite(config.time_budget_seconds)
                                 ? config.time_budget_seconds
                                 : 1e9));

  std::unordered_set<std::vector<uint32_t>, IdVectorHash> evaluated;
  std::vector<BeamEntry> beam;
  const std::vector<uint32_t> empty_ids;
  const pattern::Extension full_extension(n, /*full=*/true);

  std::vector<double> scores;
  std::vector<uint8_t> chunk_scored;
  size_t generation_ticks = 0;

  // Level 1 candidates: every pool condition. Deeper levels: beam x pool.
  for (int depth = 1; depth <= config.max_depth; ++depth) {
    if (Clock::now() >= deadline) {
      result.hit_time_budget = true;
      break;
    }

    // ---- Phase 1: generate this level's candidate batch ----------------
    // Deterministic order: parents in beam order, conditions ascending.
    CandidateBatch batch;
    batch.pool = &pool;
    batch.depth = static_cast<size_t>(depth);
    if (depth == 1) {
      batch.parents.push_back(&full_extension);
      batch.parent_ids.push_back(&empty_ids);
    } else {
      batch.parents.reserve(beam.size());
      batch.parent_ids.reserve(beam.size());
      for (const BeamEntry& entry : beam) {
        batch.parents.push_back(&entry.extension);
        batch.parent_ids.push_back(&entry.condition_ids);
      }
    }
    if (batch.parents.empty()) break;

    for (uint32_t pi = 0;
         pi < batch.parents.size() && !result.hit_time_budget; ++pi) {
      // Reconstruct the parent's intention once for the constraint checks.
      const pattern::Intention parent_intention =
          MakeIntention(pool, *batch.parent_ids[pi]);
      const pattern::Extension& parent_extension = *batch.parents[pi];
      for (uint32_t cid = 0; cid < pool.size(); ++cid) {
        if ((++generation_ticks & (kCandidateChunk - 1)) == 0 &&
            Clock::now() >= deadline) {
          result.hit_time_budget = true;
          break;
        }
        const pattern::Condition& cond = pool.condition(cid);
        if (!parent_intention.AllowsRefinementWith(cond)) continue;
        std::vector<uint32_t> ids = *batch.parent_ids[pi];
        ids.insert(std::upper_bound(ids.begin(), ids.end(), cid), cid);
        if (!evaluated.insert(ids).second) continue;

        const size_t count = pattern::Extension::IntersectionCount(
            parent_extension, pool.extension(cid));
        if (count < min_coverage || count > max_coverage || count == n) {
          continue;
        }
        batch.items.push_back(
            {pi, cid, static_cast<uint32_t>(count)});
        batch.ids.push_back(std::move(ids));
      }
    }

    // ---- Phase 2: score the batch in chunks ----------------------------
    // Scores land at fixed candidate indices, so parallel scheduling cannot
    // change the outcome (see the determinism note in beam_search.hpp for
    // the finite-budget caveat). When the budget already expired during
    // generation, only a small fixed prefix of the batch is scored
    // sequentially: the level still contributes partial results, while the
    // overshoot past the deadline stays bounded by ~kExpiredSliceChunks
    // chunks of evaluation instead of a whole beam level.
    scores.assign(batch.size(), -std::numeric_limits<double>::infinity());
    chunk_scored.assign(batch.size(), 0);
    if (result.hit_time_budget) {
      constexpr size_t kExpiredSliceChunks = 4;
      const size_t slice =
          std::min(batch.size(), kExpiredSliceChunks * kCandidateChunk);
      for (size_t begin = 0; begin < slice; begin += kCandidateChunk) {
        const size_t end = std::min(begin + kCandidateChunk, slice);
        evaluator.ScoreChunk(batch, begin, end, /*worker=*/0,
                             scores.data());
        std::fill(chunk_scored.begin() + ptrdiff_t(begin),
                  chunk_scored.begin() + ptrdiff_t(end), uint8_t{1});
      }
    } else {
      std::atomic<bool> expired{false};
      const auto score_chunk = [&](size_t begin, size_t end,
                                   size_t worker) {
        if (expired.load(std::memory_order_relaxed)) return;
        if (Clock::now() >= deadline) {
          expired.store(true, std::memory_order_relaxed);
          return;
        }
        evaluator.ScoreChunk(batch, begin, end, worker, scores.data());
        std::fill(chunk_scored.begin() + ptrdiff_t(begin),
                  chunk_scored.begin() + ptrdiff_t(end), uint8_t{1});
      };
      if (workers != nullptr) {
        workers->ParallelChunks(batch.size(), kCandidateChunk, score_chunk);
      } else {
        for (size_t begin = 0; begin < batch.size();
             begin += kCandidateChunk) {
          score_chunk(begin,
                      std::min(begin + kCandidateChunk, batch.size()), 0);
        }
      }
      if (expired.load(std::memory_order_relaxed)) {
        result.hit_time_budget = true;
      }
    }

    // ---- Phase 3: merge in candidate-index order -----------------------
    // Sequential and order-fixed: output is bit-identical to a
    // single-threaded run. Extensions are materialized only for candidates
    // some list would accept.
    TopList level_best(static_cast<size_t>(config.beam_width));
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!chunk_scored[i]) continue;
      ++result.num_evaluated;
      const double q = scores[i];
      if (q == -std::numeric_limits<double>::infinity()) continue;
      if (!level_best.WouldAccept(q) && !top_list.WouldAccept(q)) continue;
      const CandidateBatch::Item& item = batch.items[i];
      const pattern::Extension extension = pattern::Extension::Intersect(
          batch.parent_extension(item), batch.condition_extension(item));
      level_best.Offer(batch.ids[i], extension, q);
      top_list.Offer(batch.ids[i], extension, q);
    }
    beam = level_best.SortedDescending();
    if (result.hit_time_budget) break;
  }

  for (BeamEntry& entry : top_list.SortedDescending()) {
    ScoredSubgroup scored;
    scored.intention = MakeIntention(pool, entry.condition_ids);
    scored.extension = std::move(entry.extension);
    scored.quality = entry.quality;
    result.top.push_back(std::move(scored));
  }
  return result;
}

SearchResult BeamSearch(const data::DataTable& table,
                        const ConditionPool& pool, const SearchConfig& config,
                        const QualityFunction& quality) {
  CallbackEvaluator evaluator(quality);
  return BeamSearch(table, pool, config, evaluator);
}

}  // namespace sisd::search
