#include "search/condition_pool.hpp"

#include "stats/descriptive.hpp"

namespace sisd::search {

ConditionPool ConditionPool::Build(const data::DataTable& table,
                                   int num_splits) {
  ConditionPool pool;
  const size_t n = table.num_rows();
  for (size_t j = 0; j < table.num_columns(); ++j) {
    const data::Column& col = table.column(j);
    std::vector<pattern::Condition> candidates;
    if (data::IsOrderable(col.kind())) {
      const std::vector<double> splits =
          stats::QuantileSplitPoints(col.numeric_values(), num_splits);
      for (double split : splits) {
        candidates.push_back(pattern::Condition::LessEqual(j, split));
        candidates.push_back(pattern::Condition::GreaterEqual(j, split));
      }
    } else {
      for (size_t level = 0; level < col.NumLevels(); ++level) {
        candidates.push_back(
            pattern::Condition::Equals(j, static_cast<int32_t>(level)));
      }
      // Set-exclusion conditions (§II-A) are only non-redundant when the
      // attribute has at least three levels (for binary attributes
      // `!= v` equals `== !v`).
      if (col.NumLevels() >= 3) {
        for (size_t level = 0; level < col.NumLevels(); ++level) {
          candidates.push_back(
              pattern::Condition::NotEquals(j, static_cast<int32_t>(level)));
        }
      }
    }
    for (const pattern::Condition& c : candidates) {
      pattern::Extension ext = c.Evaluate(table);
      if (ext.count() == 0 || ext.count() == n) continue;  // vacuous
      pool.conditions_.push_back(c);
      pool.extensions_.push_back(std::move(ext));
    }
  }
  return pool;
}

}  // namespace sisd::search
