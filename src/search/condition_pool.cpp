#include "search/condition_pool.hpp"

#include <unordered_set>

#include "stats/descriptive.hpp"

namespace sisd::search {

namespace {

/// FNV-1a over an extension's packed blocks (the universe size is shared
/// by every extension in one pool, so blocks determine identity).
struct ExtensionHash {
  size_t operator()(const pattern::Extension& ext) const {
    size_t h = 1469598103934665603ull;
    for (uint64_t block : ext.blocks()) {
      h ^= size_t(block);
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

ConditionPool ConditionPool::Build(const data::DataTable& table,
                                   int num_splits,
                                   bool include_exclusions) {
  ConditionPool pool;
  const size_t n = table.num_rows();
  // Dedup by extension: quantile ties on low-cardinality numeric columns
  // yield several thresholds selecting exactly the same rows, and every
  // duplicate would be generated and scored at every beam level. The first
  // condition with a given extension wins; later bit-identical ones are
  // dropped (they cannot change any search outcome — candidate subgroups
  // are determined by extensions, and the ranked list dedups intentions).
  std::unordered_set<pattern::Extension, ExtensionHash> seen;
  for (size_t j = 0; j < table.num_columns(); ++j) {
    const data::Column& col = table.column(j);
    std::vector<pattern::Condition> candidates;
    if (data::IsOrderable(col.kind())) {
      const std::vector<double> splits =
          stats::QuantileSplitPoints(col.numeric_values(), num_splits);
      for (double split : splits) {
        candidates.push_back(pattern::Condition::LessEqual(j, split));
        candidates.push_back(pattern::Condition::GreaterEqual(j, split));
      }
    } else {
      for (size_t level = 0; level < col.NumLevels(); ++level) {
        candidates.push_back(
            pattern::Condition::Equals(j, static_cast<int32_t>(level)));
      }
      // Set-exclusion conditions (§II-A) are opt-in (the paper's Cortana
      // alphabet omits them) and only non-redundant when the attribute has
      // at least three levels (for binary attributes `!= v` equals
      // `== !v`).
      if (include_exclusions && col.NumLevels() >= 3) {
        for (size_t level = 0; level < col.NumLevels(); ++level) {
          candidates.push_back(
              pattern::Condition::NotEquals(j, static_cast<int32_t>(level)));
        }
      }
    }
    for (const pattern::Condition& c : candidates) {
      pattern::Extension ext = c.Evaluate(table);
      if (ext.count() == 0 || ext.count() == n) continue;  // vacuous
      if (!seen.insert(ext).second) continue;  // bit-identical duplicate
      pool.conditions_.push_back(c);
      pool.extensions_.push_back(std::move(ext));
    }
  }
  return pool;
}

}  // namespace sisd::search
