#include "search/condition_pool.hpp"

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "stats/descriptive.hpp"

namespace sisd::search {

namespace {

/// FNV-1a over an extension's packed blocks (the universe size is shared
/// by every extension in one pool, so blocks determine identity).
struct ExtensionHash {
  size_t operator()(const pattern::Extension& ext) const {
    size_t h = 1469598103934665603ull;
    for (uint64_t block : ext.blocks()) {
      h ^= size_t(block);
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Candidate conditions of column `j`, in canonical enumeration order.
/// The single definition behind both `Build` paths: the incremental path
/// is bit-identical to the scratch path because they enumerate (and
/// filter) the exact same sequence.
std::vector<pattern::Condition> EnumerateColumnCandidates(
    const data::Column& col, size_t j, int num_splits,
    bool include_exclusions) {
  std::vector<pattern::Condition> candidates;
  if (data::IsOrderable(col.kind())) {
    const std::vector<double> splits =
        stats::QuantileSplitPoints(col.numeric_values(), num_splits);
    for (double split : splits) {
      candidates.push_back(pattern::Condition::LessEqual(j, split));
      candidates.push_back(pattern::Condition::GreaterEqual(j, split));
    }
  } else {
    for (size_t level = 0; level < col.NumLevels(); ++level) {
      candidates.push_back(
          pattern::Condition::Equals(j, static_cast<int32_t>(level)));
    }
    // Set-exclusion conditions (§II-A) are opt-in (the paper's Cortana
    // alphabet omits them) and only non-redundant when the attribute has
    // at least three levels (for binary attributes `!= v` equals
    // `== !v`).
    if (include_exclusions && col.NumLevels() >= 3) {
      for (size_t level = 0; level < col.NumLevels(); ++level) {
        candidates.push_back(
            pattern::Condition::NotEquals(j, static_cast<int32_t>(level)));
      }
    }
  }
  return candidates;
}

/// Exact identity of a condition for parent-pool lookup. Thresholds
/// compare by double *bits* (a quantile that moved by any amount is a
/// different condition; string round-trips are not involved).
struct ConditionKey {
  size_t attribute = 0;
  pattern::ConditionOp op = pattern::ConditionOp::kEquals;
  uint64_t value_bits = 0;

  bool operator==(const ConditionKey& other) const {
    return attribute == other.attribute && op == other.op &&
           value_bits == other.value_bits;
  }
};

struct ConditionKeyHash {
  size_t operator()(const ConditionKey& key) const {
    size_t h = 1469598103934665603ull;
    for (uint64_t part : {uint64_t(key.attribute),
                          uint64_t(static_cast<int>(key.op)),
                          key.value_bits}) {
      h ^= size_t(part);
      h *= 1099511628211ull;
    }
    return h;
  }
};

ConditionKey KeyOf(const pattern::Condition& c) {
  ConditionKey key;
  key.attribute = c.attribute;
  key.op = c.op;
  if (c.op == pattern::ConditionOp::kEquals ||
      c.op == pattern::ConditionOp::kNotEquals) {
    key.value_bits = static_cast<uint64_t>(static_cast<uint32_t>(c.level));
  } else {
    key.value_bits = std::bit_cast<uint64_t>(c.threshold);
  }
  return key;
}

}  // namespace

ConditionPool ConditionPool::Build(const data::DataTable& table,
                                   int num_splits,
                                   bool include_exclusions) {
  ConditionPool pool;
  const size_t n = table.num_rows();
  // Dedup by extension: quantile ties on low-cardinality numeric columns
  // yield several thresholds selecting exactly the same rows, and every
  // duplicate would be generated and scored at every beam level. The first
  // condition with a given extension wins; later bit-identical ones are
  // dropped (they cannot change any search outcome — candidate subgroups
  // are determined by extensions, and the ranked list dedups intentions).
  std::unordered_set<pattern::Extension, ExtensionHash> seen;
  for (size_t j = 0; j < table.num_columns(); ++j) {
    for (const pattern::Condition& c : EnumerateColumnCandidates(
             table.column(j), j, num_splits, include_exclusions)) {
      pattern::Extension ext = c.Evaluate(table);
      if (ext.count() == 0 || ext.count() == n) continue;  // vacuous
      if (!seen.insert(ext).second) continue;  // bit-identical duplicate
      pool.conditions_.push_back(c);
      pool.extensions_.push_back(std::move(ext));
    }
  }
  return pool;
}

ConditionPool ConditionPool::BuildIncremental(const data::DataTable& table,
                                              const ConditionPool& parent,
                                              size_t parent_rows,
                                              int num_splits,
                                              bool include_exclusions,
                                              IncrementalPoolStats* stats) {
  const size_t n = table.num_rows();
  SISD_CHECK(n >= parent_rows);
  SISD_CHECK(parent.extensions_.empty() ||
             parent.extensions_.front().universe_size() == parent_rows);
  std::unordered_map<ConditionKey, size_t, ConditionKeyHash> parent_index;
  parent_index.reserve(parent.size());
  for (size_t i = 0; i < parent.size(); ++i) {
    parent_index.emplace(KeyOf(parent.condition(i)), i);
  }

  IncrementalPoolStats local;
  ConditionPool pool;
  std::unordered_set<pattern::Extension, ExtensionHash> seen;
  for (size_t j = 0; j < table.num_columns(); ++j) {
    for (const pattern::Condition& c : EnumerateColumnCandidates(
             table.column(j), j, num_splits, include_exclusions)) {
      pattern::Extension ext(0);
      auto it = parent_index.find(KeyOf(c));
      if (it != parent_index.end()) {
        // Same threshold/level as a parent condition: the parent bitset is
        // exactly the evaluation over the unchanged prefix (shared column
        // chunks), so only the appended rows need evaluating.
        ext = parent.extension(it->second).ExtendedTo(n);
        c.EvaluateInto(table, parent_rows, &ext);
        ++local.reused;
      } else {
        // Threshold moved (or the condition was filtered from the parent
        // pool): full evaluation.
        ext = c.Evaluate(table);
        ++local.rebuilt;
      }
      if (ext.count() == 0 || ext.count() == n) continue;  // vacuous
      if (!seen.insert(ext).second) continue;  // bit-identical duplicate
      pool.conditions_.push_back(c);
      pool.extensions_.push_back(std::move(ext));
    }
  }
  if (stats != nullptr) *stats = local;
  return pool;
}

}  // namespace sisd::search
