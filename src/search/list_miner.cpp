#include "search/list_miner.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "kernels/kernels.hpp"
#include "pattern/patterns.hpp"
#include "search/batch_evaluator.hpp"

namespace sisd::search {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr uint32_t kNoParent = std::numeric_limits<uint32_t>::max();

/// The target matrix is row-major, so its columns are strided; the moment
/// kernels need one contiguous double per row. Copied once per call.
std::vector<std::vector<double>> CopyTargetColumns(
    const linalg::Matrix& targets) {
  std::vector<std::vector<double>> columns(targets.cols());
  for (size_t j = 0; j < targets.cols(); ++j) {
    columns[j].resize(targets.rows());
    for (size_t i = 0; i < targets.rows(); ++i) {
      columns[j][i] = targets(i, j);
    }
  }
  return columns;
}

/// Engine evaluator: scores a candidate by the list gain of the rows it
/// would newly capture, through the fused masked-moments kernel — the
/// captured set `parent & uncovered & condition` is never materialized
/// (the per-worker scratch holds `parent & uncovered`, reused across the
/// consecutive candidates sharing a parent). The kernel lane contract
/// makes masked lanes unobservable, so these fused moments are bit-equal
/// to moments over the materialized captured bitset — the property the
/// naive reference below checks differentially.
class ListGainEvaluator final : public BatchEvaluator {
 public:
  ListGainEvaluator(const std::vector<std::vector<double>>& columns,
                    const pattern::Extension& uncovered,
                    const si::LocalNormalModel& default_model,
                    const si::ListGainParams& params, size_t min_captured)
      : columns_(&columns),
        uncovered_(&uncovered),
        default_(&default_model),
        params_(params),
        min_captured_(min_captured) {}

  bool SupportsParallelScoring() const override { return true; }

  void Prepare(size_t num_workers) override {
    workers_.resize(num_workers);
    for (Worker& w : workers_) w.moments.resize(columns_->size());
  }

  void ScoreChunk(const CandidateBatch& batch, size_t begin, size_t end,
                  size_t worker, double* scores) override {
    Worker& w = workers_[worker];
    const size_t dy = columns_->size();
    uint32_t cached_parent = kNoParent;
    for (size_t i = begin; i < end; ++i) {
      const CandidateBatch::Item& item = batch.items[i];
      if (item.parent != cached_parent) {
        pattern::Extension::IntersectInto(batch.parent_extension(item),
                                          *uncovered_, &w.scratch);
        cached_parent = item.parent;
      }
      const pattern::Extension& condition = batch.condition_extension(item);
      const uint64_t* a = w.scratch.blocks().data();
      const uint64_t* b = condition.blocks().data();
      const size_t num_blocks = w.scratch.blocks().size();
      double score = kNegInf;
      if (dy > 0) {
        bool accepted = true;
        for (size_t j = 0; j < dy; ++j) {
          w.moments[j] =
              kernels::MaskedMomentsAnd((*columns_)[j].data(), a, b,
                                        num_blocks);
          if (j == 0 && w.moments[0].count < min_captured_) {
            accepted = false;
            break;
          }
        }
        if (accepted) {
          score = si::ListGainFromMoments(w.moments.data(), dy, *default_,
                                          batch.ids[i].size(), params_);
        }
      }
      scores[i] = score;
    }
  }

 private:
  struct Worker {
    pattern::Extension scratch{0};  ///< parent & uncovered
    std::vector<kernels::MaskedMoments> moments;
  };

  const std::vector<std::vector<double>>* columns_;
  const pattern::Extension* uncovered_;
  const si::LocalNormalModel* default_;
  si::ListGainParams params_;
  size_t min_captured_;
  std::vector<Worker> workers_;
};

/// Reference evaluator: materializes every candidate extension and its
/// captured subset, recomputes moments on the materialized bitset, and
/// declines parallel scoring — no scratch reuse, no fused masks, no
/// threads. Deliberately the slowest honest implementation.
class NaiveListGainEvaluator final : public BatchEvaluator {
 public:
  NaiveListGainEvaluator(const std::vector<std::vector<double>>& columns,
                         const pattern::Extension& uncovered,
                         const si::LocalNormalModel& default_model,
                         const si::ListGainParams& params,
                         size_t min_captured)
      : columns_(&columns),
        uncovered_(&uncovered),
        default_(&default_model),
        params_(params),
        min_captured_(min_captured) {}

  void ScoreChunk(const CandidateBatch& batch, size_t begin, size_t end,
                  size_t /*worker*/, double* scores) override {
    const size_t dy = columns_->size();
    for (size_t i = begin; i < end; ++i) {
      const CandidateBatch::Item& item = batch.items[i];
      const pattern::Extension candidate = pattern::Extension::Intersect(
          batch.parent_extension(item), batch.condition_extension(item));
      const pattern::Extension captured =
          pattern::Extension::Intersect(candidate, *uncovered_);
      if (dy == 0 || captured.count() < min_captured_) {
        scores[i] = kNegInf;
        continue;
      }
      std::vector<kernels::MaskedMoments> moments(dy);
      const uint64_t* blocks = captured.blocks().data();
      const size_t num_blocks = captured.blocks().size();
      for (size_t j = 0; j < dy; ++j) {
        moments[j] = kernels::MaskedMomentsAnd((*columns_)[j].data(), blocks,
                                               blocks, num_blocks);
      }
      scores[i] = si::ListGainFromMoments(moments.data(), dy, *default_,
                                          batch.ids[i].size(), params_);
    }
  }

 private:
  const std::vector<std::vector<double>>* columns_;
  const pattern::Extension* uncovered_;
  const si::LocalNormalModel* default_;
  si::ListGainParams params_;
  size_t min_captured_;
};

ListMineStats ExtendImpl(const data::DataTable& table,
                         const linalg::Matrix& targets,
                         const ConditionPool& pool,
                         const ListSearchConfig& config, SubgroupList* list,
                         ThreadPool* shared_workers, bool naive) {
  SISD_CHECK(list != nullptr);
  ListMineStats stats;
  const std::vector<std::vector<double>> columns = CopyTargetColumns(targets);
  const size_t dy = columns.size();
  const size_t min_captured = std::max<size_t>(1, config.min_captured);
  const size_t max_rules = size_t(std::max(1, config.max_rules));

  while (stats.rules_appended < max_rules) {
    if (list->uncovered.count() < min_captured) {
      stats.exhausted = true;
      break;
    }
    SearchResult result;
    if (naive) {
      NaiveListGainEvaluator evaluator(columns, list->uncovered,
                                       list->default_model, config.gain,
                                       min_captured);
      result = BeamSearch(table, pool, config.search, evaluator);
    } else {
      ListGainEvaluator evaluator(columns, list->uncovered,
                                  list->default_model, config.gain,
                                  min_captured);
      result =
          BeamSearch(table, pool, config.search, evaluator, shared_workers);
    }
    stats.num_evaluated += result.num_evaluated;
    stats.hit_time_budget = stats.hit_time_budget || result.hit_time_budget;
    // Stop when nothing compresses: a rule with gain <= 0 would make the
    // encoding longer, so the greedy list is complete.
    if (result.top.empty() || !(result.best().quality > 0.0)) {
      stats.exhausted = true;
      break;
    }

    const ScoredSubgroup& best = result.best();
    SubgroupRule rule;
    rule.intention = best.intention;
    rule.extension = best.extension;
    rule.captured =
        pattern::Extension::Intersect(best.extension, list->uncovered);
    std::vector<kernels::MaskedMoments> moments(dy);
    const uint64_t* blocks = rule.captured.blocks().data();
    const size_t num_blocks = rule.captured.blocks().size();
    for (size_t j = 0; j < dy; ++j) {
      moments[j] = kernels::MaskedMomentsAnd(columns[j].data(), blocks,
                                             blocks, num_blocks);
    }
    si::FitLocalNormalModel(moments.data(), dy, config.gain.variance_floor,
                            &rule.local);
    rule.gain = best.quality;
    ReplaySubgroupRule(std::move(rule), list);
    ++stats.rules_appended;
  }
  return stats;
}

}  // namespace

SubgroupList MakeEmptySubgroupList(const linalg::Matrix& targets,
                                   const si::ListGainParams& gain) {
  SubgroupList list;
  const size_t n = targets.rows();
  const size_t dy = targets.cols();
  list.uncovered = pattern::Extension(n, /*full=*/true);
  if (n == 0 || dy == 0) {
    list.default_model.mean = linalg::Vector(dy);
    list.default_model.variance = linalg::Vector(dy, gain.variance_floor);
    return list;
  }
  const std::vector<std::vector<double>> columns = CopyTargetColumns(targets);
  std::vector<kernels::MaskedMoments> moments(dy);
  const uint64_t* blocks = list.uncovered.blocks().data();
  const size_t num_blocks = list.uncovered.blocks().size();
  for (size_t j = 0; j < dy; ++j) {
    moments[j] = kernels::MaskedMomentsAnd(columns[j].data(), blocks, blocks,
                                           num_blocks);
  }
  si::FitLocalNormalModel(moments.data(), dy, gain.variance_floor,
                          &list.default_model);
  return list;
}

ListMineStats ExtendSubgroupList(const data::DataTable& table,
                                 const linalg::Matrix& targets,
                                 const ConditionPool& pool,
                                 const ListSearchConfig& config,
                                 SubgroupList* list,
                                 ThreadPool* shared_workers) {
  return ExtendImpl(table, targets, pool, config, list, shared_workers,
                    /*naive=*/false);
}

ListMineStats ExtendSubgroupListReference(const data::DataTable& table,
                                          const linalg::Matrix& targets,
                                          const ConditionPool& pool,
                                          const ListSearchConfig& config,
                                          SubgroupList* list) {
  return ExtendImpl(table, targets, pool, config, list, nullptr,
                    /*naive=*/true);
}

void ReplaySubgroupRule(SubgroupRule rule, SubgroupList* list) {
  SISD_CHECK(list != nullptr);
  pattern::Extension keep = rule.extension;
  keep.Complement();
  list->uncovered.IntersectWith(keep);
  list->total_gain += rule.gain;
  list->rules.push_back(std::move(rule));
}

Result<SubgroupRule> RederiveSubgroupRule(const data::DataTable& table,
                                          const linalg::Matrix& targets,
                                          const si::ListGainParams& gain,
                                          const pattern::Intention& intention,
                                          const SubgroupList& list) {
  pattern::Subgroup subgroup =
      pattern::Subgroup::FromIntention(table, intention);
  SubgroupRule rule;
  rule.intention = intention;
  rule.extension = std::move(subgroup.extension);
  rule.captured =
      pattern::Extension::Intersect(rule.extension, list.uncovered);
  if (rule.captured.empty()) {
    return Status::InvalidArgument(
        "rule captures no uncovered rows on this data");
  }
  // Same moments → fit → gain arithmetic the miner runs at append time
  // (kernel lane contract: self-masked moments equal materialized ones).
  const std::vector<std::vector<double>> columns = CopyTargetColumns(targets);
  const size_t dy = columns.size();
  std::vector<kernels::MaskedMoments> moments(dy);
  const uint64_t* blocks = rule.captured.blocks().data();
  const size_t num_blocks = rule.captured.blocks().size();
  for (size_t j = 0; j < dy; ++j) {
    moments[j] = kernels::MaskedMomentsAnd(columns[j].data(), blocks, blocks,
                                           num_blocks);
  }
  si::FitLocalNormalModel(moments.data(), dy, gain.variance_floor,
                          &rule.local);
  rule.gain = si::ListGainFromMoments(moments.data(), dy, list.default_model,
                                      intention.size(), gain);
  return rule;
}

}  // namespace sisd::search
