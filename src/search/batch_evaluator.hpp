/// \file batch_evaluator.hpp
/// \brief The batch evaluation protocol between the beam search and the
/// quality scorers.
///
/// Instead of scoring candidates one-by-one through a callback, the search
/// generates one `CandidateBatch` per beam level (parent x pool-condition
/// refinements, already deduplicated and coverage-filtered) and hands
/// contiguous chunks of it to a `BatchEvaluator`. Candidates are *virtual*:
/// an item is a (parent extension, pool condition) pair plus the precomputed
/// intersection count, so evaluators can compute subgroup statistics with
/// fused masked kernels (see `pattern::Extension::IntersectionCountAnd`,
/// `pattern::MaskedSubgroupMeanInto`) without ever materializing the
/// intersection bitset. Only candidates that actually enter the beam or the
/// result list get materialized.

#ifndef SISD_SEARCH_BATCH_EVALUATOR_HPP_
#define SISD_SEARCH_BATCH_EVALUATOR_HPP_

#include <cstdint>
#include <vector>

#include "pattern/extension.hpp"
#include "search/condition_pool.hpp"

namespace sisd::search {

/// \brief One beam level's candidate set, in deterministic generation order
/// (parents in beam order, pool conditions in ascending id order).
struct CandidateBatch {
  /// A virtual candidate: refine `parents[parent]` with pool condition
  /// `condition`; `count` is the precomputed size of the intersection.
  struct Item {
    uint32_t parent = 0;
    uint32_t condition = 0;
    uint32_t count = 0;
  };

  const ConditionPool* pool = nullptr;
  /// Parent extensions (beam entries of the previous level; one full
  /// extension at depth 1).
  std::vector<const pattern::Extension*> parents;
  /// Sorted pool-condition ids of each parent (aligned with `parents`).
  std::vector<const std::vector<uint32_t>*> parent_ids;
  /// Conditions per candidate at this level (= beam depth).
  size_t depth = 1;
  std::vector<Item> items;
  /// Sorted pool-condition ids of each candidate (aligned with `items`).
  std::vector<std::vector<uint32_t>> ids;

  size_t size() const { return items.size(); }

  const pattern::Extension& parent_extension(const Item& item) const {
    return *parents[item.parent];
  }
  const pattern::Extension& condition_extension(const Item& item) const {
    return pool->extension(item.condition);
  }
};

/// \brief Scores chunks of a candidate batch. Implementations own whatever
/// per-worker scratch they need.
class BatchEvaluator {
 public:
  virtual ~BatchEvaluator() = default;

  /// True when `ScoreChunk` may run concurrently from several threads (with
  /// distinct `worker` ids). Evaluators wrapping arbitrary callbacks return
  /// false and are scored on the calling thread only.
  virtual bool SupportsParallelScoring() const { return false; }

  /// Called once per search, before any scoring, with the number of worker
  /// slots that will be used. Allocate per-worker scratch here.
  virtual void Prepare(size_t num_workers) { (void)num_workers; }

  /// Scores candidates `[begin, end)` of `batch` into `scores[begin..end)`.
  /// A score of -infinity rejects the candidate (it enters neither the beam
  /// nor the result list). `worker` is the slot id (< the `Prepare` count).
  virtual void ScoreChunk(const CandidateBatch& batch, size_t begin,
                          size_t end, size_t worker, double* scores) = 0;
};

}  // namespace sisd::search

#endif  // SISD_SEARCH_BATCH_EVALUATOR_HPP_
