#include "search/si_evaluator.hpp"

namespace sisd::search {

SiLocationEvaluator::SiLocationEvaluator(const model::BackgroundModel& model,
                                         const linalg::Matrix& targets,
                                         si::DescriptionLengthParams dl)
    : model_(&model), targets_(&targets), dl_(dl) {
  // One context exists from the start so ScoreSubgroup works without a
  // search having run. Context construction warms the model's per-group
  // Cholesky caches, making later concurrent reads safe.
  contexts_.emplace_back(*model_, targets_);
}

void SiLocationEvaluator::Prepare(size_t num_workers) {
  while (contexts_.size() < num_workers) {
    contexts_.emplace_back(*model_, targets_);
  }
}

void SiLocationEvaluator::ScoreChunk(const CandidateBatch& batch,
                                     size_t begin, size_t end, size_t worker,
                                     double* scores) {
  SISD_DCHECK(worker < contexts_.size());
  si::EvaluationContext& context = contexts_[worker];
  linalg::Vector& mean = *context.scratch_mean();
  const bool univariate = context.has_univariate_targets();
  for (size_t i = begin; i < end; ++i) {
    const CandidateBatch::Item& item = batch.items[i];
    const pattern::Extension& parent = batch.parent_extension(item);
    const pattern::Extension& condition = batch.condition_extension(item);
    if (univariate) {
      // dy == 1: one fused pass yields count + sum (+ sum of squares); the
      // sum is bit-identical to the MaskedSubgroupMeanInto path, and the
      // kernel's own popcount cross-checks the batch's cached count.
      const kernels::MaskedMoments moments =
          context.MaskedTargetMomentsAnd(parent, condition);
      SISD_DCHECK(moments.count == item.count);
      mean[0] = moments.sum / double(item.count);
    } else {
      context.MaskedSubgroupMeanInto(parent, condition, item.count, &mean);
    }
    scores[i] = context
                    .ScoreLocationMasked(parent, condition, item.count, mean,
                                         batch.depth, dl_)
                    .si;
  }
  num_batch_scored_.fetch_add(end - begin, std::memory_order_relaxed);
}

si::LocationScore SiLocationEvaluator::ScoreSubgroup(
    const pattern::Extension& extension, const linalg::Vector& empirical_mean,
    size_t num_conditions) {
  return contexts_.front().ScoreLocation(extension, empirical_mean,
                                         num_conditions, dl_);
}

}  // namespace sisd::search
