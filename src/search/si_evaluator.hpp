/// \file si_evaluator.hpp
/// \brief Batch evaluator scoring candidates by location-pattern SI
/// (Eq. 14) — the hot path of the paper's iterative mining loop.
///
/// Holds one `si::EvaluationContext` per worker thread, so parallel scoring
/// is allocation-free and never contends: the model snapshot is shared
/// read-only (its per-group Cholesky caches are warmed up front), while
/// scratch buffers and the marginal-factorization cache are per worker.
/// Scores are pure functions of the candidate, so the search output is
/// bit-identical for any thread count.

#ifndef SISD_SEARCH_SI_EVALUATOR_HPP_
#define SISD_SEARCH_SI_EVALUATOR_HPP_

#include <atomic>
#include <vector>

#include "linalg/matrix.hpp"
#include "model/background_model.hpp"
#include "search/batch_evaluator.hpp"
#include "si/evaluation_context.hpp"
#include "si/interestingness.hpp"

namespace sisd::search {

/// \brief Location-SI batch evaluator over a fixed model snapshot.
class SiLocationEvaluator final : public BatchEvaluator {
 public:
  /// Binds to `model` and target matrix `targets` (both kept by reference;
  /// neither may change while the evaluator is in use).
  SiLocationEvaluator(const model::BackgroundModel& model,
                      const linalg::Matrix& targets,
                      si::DescriptionLengthParams dl);

  bool SupportsParallelScoring() const override { return true; }

  void Prepare(size_t num_workers) override;

  void ScoreChunk(const CandidateBatch& batch, size_t begin, size_t end,
                  size_t worker, double* scores) override;

  /// Full (IC, DL, SI) of one materialized subgroup through worker 0's
  /// context — the miner uses this to rescore the final top-k without
  /// rebuilding factorizations (the search already populated the caches).
  si::LocationScore ScoreSubgroup(const pattern::Extension& extension,
                                  const linalg::Vector& empirical_mean,
                                  size_t num_conditions);

  /// Candidates scored through `ScoreChunk` so far (diagnostics; lets tests
  /// assert that top-k rescoring does not re-enter the batch path).
  size_t num_batch_scored() const {
    return num_batch_scored_.load(std::memory_order_relaxed);
  }

 private:
  const model::BackgroundModel* model_;
  const linalg::Matrix* targets_;
  si::DescriptionLengthParams dl_;
  std::vector<si::EvaluationContext> contexts_;  ///< one per worker
  std::atomic<size_t> num_batch_scored_{0};
};

}  // namespace sisd::search

#endif  // SISD_SEARCH_SI_EVALUATOR_HPP_
