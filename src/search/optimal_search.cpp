#include "search/optimal_search.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "kernels/kernels.hpp"
#include "si/evaluation_context.hpp"

namespace sisd::search {

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kLog2Pi = 1.8378770664093453;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Deadline-check granularity, matching the batch engine's candidate chunk.
constexpr size_t kDeadlineCheckInterval = 256;

/// \brief Precomputed global target order backing the per-node bound.
///
/// Rows are sorted once, ascending by (target value, row index). A node's
/// member values in sorted order are then exactly the values at its member
/// ranks, visited in ascending rank order — no per-node sort.
struct BoundOracle {
  std::vector<uint32_t> rank_of_row;  ///< row -> rank
  std::vector<double> sorted_values;  ///< rank -> target value
  double mu = 0.0;
  double sigma2 = 1.0;
  double gamma = 0.1;
  double eta = 1.0;
  size_t min_cov = 1;
};

std::optional<BoundOracle> MakeBoundOracle(
    const model::BackgroundModel& model, const linalg::Matrix& targets,
    const si::DescriptionLengthParams& dl, size_t min_cov) {
  // Same applicability as MakeUnivariateSiBound: univariate target, initial
  // single-group model, positive variance.
  if (model.dim() != 1 || model.num_groups() != 1) return std::nullopt;
  if (targets.cols() != 1 || targets.rows() != model.num_rows()) {
    return std::nullopt;
  }
  const double sigma2 = model.group(0).sigma(0, 0);
  if (!(sigma2 > 0.0)) return std::nullopt;

  BoundOracle oracle;
  oracle.mu = model.group(0).mu[0];
  oracle.sigma2 = sigma2;
  oracle.gamma = dl.gamma;
  oracle.eta = dl.eta;
  oracle.min_cov = min_cov;

  const size_t n = targets.rows();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&targets](uint32_t a, uint32_t b) {
    const double va = targets(a, 0);
    const double vb = targets(b, 0);
    if (va != vb) return va < vb;
    return a < b;
  });
  oracle.rank_of_row.resize(n);
  oracle.sorted_values.resize(n);
  for (size_t r = 0; r < n; ++r) {
    oracle.sorted_values[r] = targets(order[r], 0);
    oracle.rank_of_row[order[r]] = uint32_t(r);
  }
  return oracle;
}

/// \brief A frontier node: a canonical condition set (ascending pool ids)
/// with its materialized extension and optimistic bound.
struct Node {
  std::vector<uint32_t> ids;
  pattern::Extension ext{0};
  double bound = kInf;
  uint64_t seq = 0;  ///< insertion order; FIFO tie-break keeps 1-thread
                     ///< counters reproducible
};

struct NodeCmp {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound < b.bound;  // max-heap on bound
    return a.seq > b.seq;                              // then FIFO
  }
};

/// \brief Per-worker reusable scratch (contexts, rank bitset, prefix sums).
struct WorkerScratch {
  si::EvaluationContext ctx;
  std::vector<uint64_t> rank_blocks;  ///< rank-space bitset, kept all-zero
                                      ///< between bound computations
  std::vector<double> values;
  std::vector<double> prefix;
  size_t ticks = 0;
  size_t evaluated = 0;
  size_t pruned = 0;

  WorkerScratch(const model::BackgroundModel& model,
                const linalg::Matrix* targets, size_t n)
      : ctx(model, targets),
        rank_blocks((n + 63) / 64, 0),
        values(n, 0.0),
        prefix(n + 1, 0.0) {}
};

/// \brief Shared incumbent: best (quality, ids) seen by any worker, under a
/// canonical total order so the winner is independent of discovery order.
struct Incumbent {
  std::mutex mu;
  std::atomic<double> quality{-kInf};  ///< relaxed snapshot for cheap reads
  std::vector<uint32_t> ids;           ///< guarded by `mu`
};

/// Lexicographic "(prefix ++ [last]) < b" without materializing the
/// candidate's id vector.
bool CandidateLexLess(const std::vector<uint32_t>& prefix, uint32_t last,
                      const std::vector<uint32_t>& b) {
  size_t i = 0;
  for (; i < prefix.size(); ++i) {
    if (i >= b.size()) return false;
    if (prefix[i] != b[i]) return prefix[i] < b[i];
  }
  if (i >= b.size()) return false;
  if (last != b[i]) return last < b[i];
  return prefix.size() + 1 < b.size();
}

/// Offers a scored candidate to the incumbent. Higher quality wins; exact
/// quality ties go to the lexicographically smaller id vector — the same
/// candidate a sequential pre-order DFS would have kept first, which is
/// what makes the returned optimum thread-count-invariant.
void Offer(Incumbent* inc, double q, const std::vector<uint32_t>& prefix,
           uint32_t cid) {
  if (q < inc->quality.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(inc->mu);
  const double cur = inc->quality.load(std::memory_order_relaxed);
  if (q < cur) return;
  if (q == cur && !CandidateLexLess(prefix, cid, inc->ids)) return;
  inc->ids.assign(prefix.begin(), prefix.end());
  inc->ids.push_back(cid);
  inc->quality.store(q, std::memory_order_relaxed);
}

struct SearchShared {
  const ConditionPool* pool = nullptr;
  const si::DescriptionLengthParams* dl = nullptr;
  const BoundOracle* oracle = nullptr;  ///< null = bound off
  size_t n = 0;
  size_t min_cov = 1;
  int max_depth = 2;
  Clock::time_point deadline;
  std::atomic<bool> expired{false};
  Incumbent inc;
};

/// Optimistic SI bound for the child `parent & cond` (`m` rows, carrying
/// `child_num_conditions` conditions): scatter the child's rows into the
/// worker's rank-space bitset, sweep ascending to gather the values in
/// sorted order (clearing as it goes), and run the bottom-k/top-k
/// prefix-sum maximization of MakeUnivariateSiBound — same arithmetic,
/// no sort, no allocation.
double ChildBound(const BoundOracle& oracle, WorkerScratch* ws,
                  const pattern::Extension& parent,
                  const pattern::Extension& cond, size_t m,
                  size_t child_num_conditions) {
  pattern::Extension::ForEachRowAnd(parent, cond, [&](size_t row) {
    const uint32_t r = oracle.rank_of_row[row];
    ws->rank_blocks[r >> 6] |= uint64_t{1} << (r & 63);
  });
  size_t k = 0;
  ws->prefix[0] = 0.0;
  for (size_t b = 0; b < ws->rank_blocks.size(); ++b) {
    uint64_t block = ws->rank_blocks[b];
    if (block == 0) continue;
    ws->rank_blocks[b] = 0;
    while (block != 0) {
      const size_t r = (b << 6) + size_t(std::countr_zero(block));
      block &= block - 1;
      const double v = oracle.sorted_values[r];
      ws->values[k] = v;
      ws->prefix[k + 1] = ws->prefix[k] + v;
      ++k;
    }
  }
  SISD_DCHECK(k == m);

  const double total = ws->prefix[m];
  double best_ic = -kInf;
  for (size_t j = oracle.min_cov; j <= m; ++j) {
    const double dk = double(j);
    const double bottom_mean = ws->prefix[j] / dk;
    const double top_mean = (total - ws->prefix[m - j]) / dk;
    const double shift = std::max(std::fabs(bottom_mean - oracle.mu),
                                  std::fabs(top_mean - oracle.mu));
    const double ic = 0.5 * (kLog2Pi + std::log(oracle.sigma2 / dk)) +
                      dk * shift * shift / (2.0 * oracle.sigma2);
    best_ic = std::max(best_ic, ic);
  }
  // Every strict refinement carries at least one more condition; negative
  // IC makes 0 the valid supremum (see MakeUnivariateSiBound).
  const double min_descendant_dl =
      oracle.gamma * double(child_num_conditions + 1) + oracle.eta;
  return best_ic >= 0.0 ? best_ic / min_descendant_dl : 0.0;
}

/// Expands one node: enumerates its admissible sibling candidates in
/// canonical order, scores each through the fused kernel path, offers them
/// to the shared incumbent, and emits surviving interior children (bound
/// computed, extension materialized) into `*children`.
void ExpandNode(SearchShared* sh, const Node& node, WorkerScratch* ws,
                std::vector<Node>* children) {
  const size_t num_conds = node.ids.size() + 1;  // each candidate's |C|
  std::vector<pattern::Condition> conds;
  conds.reserve(node.ids.size());
  for (uint32_t id : node.ids) conds.push_back(sh->pool->condition(id));
  const pattern::Intention intention(std::move(conds));

  const bool interior = int(num_conds) < sh->max_depth;
  linalg::Vector& mean = *ws->ctx.scratch_mean();
  const bool univariate = ws->ctx.has_univariate_targets();
  const size_t nb = node.ext.blocks().size();
  const size_t start = node.ids.empty() ? 0 : size_t(node.ids.back()) + 1;
  for (size_t cid = start; cid < sh->pool->size(); ++cid) {
    if ((++ws->ticks & (kDeadlineCheckInterval - 1)) == 0) {
      if (sh->expired.load(std::memory_order_relaxed)) return;
      if (Clock::now() >= sh->deadline) {
        sh->expired.store(true, std::memory_order_relaxed);
        return;
      }
    }
    if (!intention.AllowsRefinementWith(sh->pool->condition(cid))) continue;
    const pattern::Extension& cext = sh->pool->extension(cid);
    size_t count;
    if (univariate) {
      // dy == 1: one fused pass yields count + sum; candidates that fail
      // the coverage filter cost exactly that single pass.
      const kernels::MaskedMoments moments =
          ws->ctx.MaskedTargetMomentsAnd(node.ext, cext);
      count = moments.count;
      if (count < sh->min_cov || count == sh->n) continue;
      mean[0] = moments.sum / double(count);
    } else {
      count = kernels::CountAnd2(node.ext.blocks().data(),
                                 cext.blocks().data(), nb);
      if (count < sh->min_cov || count == sh->n) continue;
      ws->ctx.MaskedSubgroupMeanInto(node.ext, cext, count, &mean);
    }
    const double q = ws->ctx
                         .ScoreLocationMasked(node.ext, cext, count, mean,
                                              num_conds, *sh->dl)
                         .si;
    ++ws->evaluated;
    Offer(&sh->inc, q, node.ids, uint32_t(cid));

    if (!interior) continue;
    double bound = kInf;
    if (sh->oracle != nullptr) {
      bound = ChildBound(*sh->oracle, ws, node.ext, cext, count, num_conds);
      // Strict: a child whose bound *ties* the incumbent may still hold a
      // canonical co-optimum and must be expanded.
      if (bound < sh->inc.quality.load(std::memory_order_relaxed)) {
        ++ws->pruned;
        continue;
      }
    }
    Node child;
    child.ids = node.ids;
    child.ids.push_back(uint32_t(cid));
    child.ext = pattern::Extension(sh->n);
    pattern::Extension::IntersectInto(node.ext, cext, &child.ext);
    child.bound = bound;
    children->push_back(std::move(child));
  }
}

}  // namespace

OptimalResult OptimalLocationSearch(const data::DataTable& table,
                                    const ConditionPool& pool,
                                    const model::BackgroundModel& model,
                                    const linalg::Matrix& targets,
                                    const si::DescriptionLengthParams& dl,
                                    const OptimalConfig& config,
                                    ThreadPool* shared_workers) {
  SISD_CHECK(config.max_depth >= 1);
  const size_t n = table.num_rows();

  SearchShared sh;
  sh.pool = &pool;
  sh.dl = &dl;
  sh.n = n;
  sh.min_cov = std::max<size_t>(config.min_coverage, 1);
  sh.max_depth = config.max_depth;
  sh.deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::isfinite(config.time_budget_seconds)
                                 ? config.time_budget_seconds
                                 : 1e9));

  std::optional<BoundOracle> oracle;
  if (config.use_bound) {
    oracle = MakeBoundOracle(model, targets, dl, sh.min_cov);
  }
  sh.oracle = oracle.has_value() ? &*oracle : nullptr;

  OptimalResult result;
  result.used_bound = sh.oracle != nullptr;

  const size_t num_workers =
      shared_workers != nullptr
          ? shared_workers->num_workers()
          : ThreadPool::ResolveNumThreads(config.num_threads);
  std::unique_ptr<ThreadPool> local_pool;
  ThreadPool* workers = shared_workers;
  if (workers == nullptr && num_workers > 1) {
    local_pool = std::make_unique<ThreadPool>(num_workers);
    workers = local_pool.get();
  }

  std::vector<WorkerScratch> scratch;
  scratch.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    scratch.emplace_back(model, &targets, n);
  }

  const NodeCmp cmp;
  std::vector<Node> heap;
  uint64_t next_seq = 0;
  {
    Node root;
    root.ext = pattern::Extension(n, /*full=*/true);
    root.seq = next_seq++;
    heap.push_back(std::move(root));
  }

  std::vector<Node> wave;
  std::vector<std::vector<Node>> wave_children;
  const size_t wave_cap = std::max<size_t>(1, num_workers * 2);
  while (!heap.empty()) {
    if (sh.expired.load(std::memory_order_relaxed) ||
        Clock::now() >= sh.deadline) {
      sh.expired.store(true, std::memory_order_relaxed);
      break;
    }
    wave.clear();
    while (wave.size() < wave_cap && !heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      Node top = std::move(heap.back());
      heap.pop_back();
      // Re-check against the incumbent as of now (it may have tightened
      // since the node was queued).
      if (top.bound < sh.inc.quality.load(std::memory_order_relaxed)) {
        ++result.num_pruned_nodes;
        continue;
      }
      wave.push_back(std::move(top));
    }
    if (wave.empty()) break;

    wave_children.assign(wave.size(), {});
    if (workers != nullptr && wave.size() > 1) {
      workers->ParallelChunks(
          wave.size(), /*grain=*/1, [&](size_t begin, size_t end, size_t w) {
            for (size_t i = begin; i < end; ++i) {
              ExpandNode(&sh, wave[i], &scratch[w], &wave_children[i]);
            }
          });
    } else {
      for (size_t i = 0; i < wave.size(); ++i) {
        ExpandNode(&sh, wave[i], &scratch[0], &wave_children[i]);
      }
    }
    result.num_expanded += wave.size();

    for (std::vector<Node>& kids : wave_children) {
      for (Node& child : kids) {
        if (child.bound < sh.inc.quality.load(std::memory_order_relaxed)) {
          ++result.num_pruned_nodes;
          continue;
        }
        child.seq = next_seq++;
        heap.push_back(std::move(child));
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }

  if (sh.expired.load(std::memory_order_relaxed)) result.completed = false;
  for (const WorkerScratch& ws : scratch) {
    result.num_evaluated += ws.evaluated;
    result.num_pruned_nodes += ws.pruned;
  }

  if (!sh.inc.ids.empty()) {
    std::vector<pattern::Condition> best_conds;
    best_conds.reserve(sh.inc.ids.size());
    pattern::Extension best_ext(n, /*full=*/true);
    for (uint32_t cid : sh.inc.ids) {
      best_conds.push_back(pool.condition(cid));
      best_ext.IntersectWith(pool.extension(cid));
    }
    result.best.intention = pattern::Intention(std::move(best_conds));
    result.best.extension = std::move(best_ext);
    result.best.quality = sh.inc.quality.load(std::memory_order_relaxed);
  }
  return result;
}

}  // namespace sisd::search
