# Empty dependencies file for sisd_search.
# This may be replaced when dependencies are built.
