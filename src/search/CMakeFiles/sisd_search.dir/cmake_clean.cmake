file(REMOVE_RECURSE
  "CMakeFiles/sisd_search.dir/beam_search.cpp.o"
  "CMakeFiles/sisd_search.dir/beam_search.cpp.o.d"
  "CMakeFiles/sisd_search.dir/condition_pool.cpp.o"
  "CMakeFiles/sisd_search.dir/condition_pool.cpp.o.d"
  "CMakeFiles/sisd_search.dir/exhaustive_search.cpp.o"
  "CMakeFiles/sisd_search.dir/exhaustive_search.cpp.o.d"
  "CMakeFiles/sisd_search.dir/list_miner.cpp.o"
  "CMakeFiles/sisd_search.dir/list_miner.cpp.o.d"
  "CMakeFiles/sisd_search.dir/optimal_search.cpp.o"
  "CMakeFiles/sisd_search.dir/optimal_search.cpp.o.d"
  "CMakeFiles/sisd_search.dir/si_evaluator.cpp.o"
  "CMakeFiles/sisd_search.dir/si_evaluator.cpp.o.d"
  "CMakeFiles/sisd_search.dir/thread_pool.cpp.o"
  "CMakeFiles/sisd_search.dir/thread_pool.cpp.o.d"
  "libsisd_search.a"
  "libsisd_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
