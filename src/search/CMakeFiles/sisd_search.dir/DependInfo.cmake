
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/beam_search.cpp" "src/search/CMakeFiles/sisd_search.dir/beam_search.cpp.o" "gcc" "src/search/CMakeFiles/sisd_search.dir/beam_search.cpp.o.d"
  "/root/repo/src/search/condition_pool.cpp" "src/search/CMakeFiles/sisd_search.dir/condition_pool.cpp.o" "gcc" "src/search/CMakeFiles/sisd_search.dir/condition_pool.cpp.o.d"
  "/root/repo/src/search/exhaustive_search.cpp" "src/search/CMakeFiles/sisd_search.dir/exhaustive_search.cpp.o" "gcc" "src/search/CMakeFiles/sisd_search.dir/exhaustive_search.cpp.o.d"
  "/root/repo/src/search/list_miner.cpp" "src/search/CMakeFiles/sisd_search.dir/list_miner.cpp.o" "gcc" "src/search/CMakeFiles/sisd_search.dir/list_miner.cpp.o.d"
  "/root/repo/src/search/optimal_search.cpp" "src/search/CMakeFiles/sisd_search.dir/optimal_search.cpp.o" "gcc" "src/search/CMakeFiles/sisd_search.dir/optimal_search.cpp.o.d"
  "/root/repo/src/search/si_evaluator.cpp" "src/search/CMakeFiles/sisd_search.dir/si_evaluator.cpp.o" "gcc" "src/search/CMakeFiles/sisd_search.dir/si_evaluator.cpp.o.d"
  "/root/repo/src/search/thread_pool.cpp" "src/search/CMakeFiles/sisd_search.dir/thread_pool.cpp.o" "gcc" "src/search/CMakeFiles/sisd_search.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/data/CMakeFiles/sisd_data.dir/DependInfo.cmake"
  "/root/repo/src/model/CMakeFiles/sisd_model.dir/DependInfo.cmake"
  "/root/repo/src/pattern/CMakeFiles/sisd_pattern.dir/DependInfo.cmake"
  "/root/repo/src/si/CMakeFiles/sisd_si.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/sisd_stats.dir/DependInfo.cmake"
  "/root/repo/src/linalg/CMakeFiles/sisd_linalg.dir/DependInfo.cmake"
  "/root/repo/src/kernels/CMakeFiles/sisd_kernels.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/sisd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
