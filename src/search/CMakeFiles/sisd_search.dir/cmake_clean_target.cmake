file(REMOVE_RECURSE
  "libsisd_search.a"
)
