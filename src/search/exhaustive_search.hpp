/// \file exhaustive_search.hpp
/// \brief Depth-first exhaustive enumeration of conjunctions with optional
/// branch-and-bound pruning — the paper's stated future work ("it may be
/// feasible to devise a branch-and-bound approach to mine optimal location
/// patterns efficiently", §V), in the style of the tight optimistic
/// estimators of Boley et al. (ECML-PKDD 2017).
///
/// The search enumerates every condition set (canonical increasing pool
/// order, same per-attribute constraints as the beam search) up to
/// `max_depth`, so its result is the *global* optimum over the description
/// language — the ground truth the heuristic beam search can be measured
/// against. With an optimistic bound it prunes subtrees that provably
/// cannot beat the incumbent.

#ifndef SISD_SEARCH_EXHAUSTIVE_SEARCH_HPP_
#define SISD_SEARCH_EXHAUSTIVE_SEARCH_HPP_

#include <functional>
#include <limits>
#include <optional>

#include "data/table.hpp"
#include "model/background_model.hpp"
#include "search/beam_search.hpp"
#include "search/condition_pool.hpp"
#include "si/interestingness.hpp"

namespace sisd::search {

/// \brief Settings for the exhaustive search.
struct ExhaustiveConfig {
  int max_depth = 2;       ///< maximum number of conditions
  size_t min_coverage = 2; ///< minimum subgroup size
  /// Wall-clock budget, checked at node entry and every 256 candidates
  /// (the batch engine's chunk granularity); when exceeded the search
  /// returns the incumbent and reports `completed = false`.
  double time_budget_seconds = std::numeric_limits<double>::infinity();
};

/// \brief Upper bound on the quality of any *strict refinement* of a node:
/// callback arguments are the node's intention and extension; the returned
/// value must dominate `quality(I', S')` for every intention `I'` extending
/// the node's and the induced `S' subseteq S` with `|S'| >= min_coverage`.
using OptimisticBound = std::function<double(const pattern::Intention&,
                                             const pattern::Extension&)>;

/// \brief Outcome of an exhaustive run.
struct ExhaustiveResult {
  ScoredSubgroup best;     ///< global optimum (if `completed`)
  size_t num_evaluated = 0;  ///< candidates scored
  size_t num_pruned_nodes = 0;  ///< subtrees cut by the bound
  bool completed = true;   ///< false iff the time budget was hit
};

/// \brief Runs the exhaustive search over `pool`.
///
/// `bound`, when provided, enables branch-and-bound pruning; it must be a
/// valid optimistic estimate or the result may be suboptimal.
ExhaustiveResult ExhaustiveSearch(const data::DataTable& table,
                                  const ConditionPool& pool,
                                  const ExhaustiveConfig& config,
                                  const QualityFunction& quality,
                                  const OptimisticBound* bound = nullptr);

/// \brief Tight optimistic estimator for the location-pattern SI on a
/// univariate target under a single-parameter-group background model (the
/// first-iteration state; this is the setting of Boley et al.).
///
/// For a node with extension S and c conditions, every refinement S' of
/// size k has
///   IC(S') = 0.5*log(2 pi sigma^2 / k) + k*(mean(S') - mu)^2/(2 sigma^2),
/// and for fixed k the mean shift is maximized by the k largest or k
/// smallest target values in S (prefix sums after sorting). Dividing the
/// max over k by the smallest descendant DL (c+1 conditions) yields a
/// valid, tight bound on descendant SI.
///
/// Fails when the model is multivariate or has evolved past one group.
///
/// **Lifetime:** the returned closure holds a non-owning pointer to `y`
/// (and reads `model`'s parameters by value at construction). The caller
/// must keep `y` alive for as long as the bound may be invoked; the bound
/// itself may safely outlive this factory call and any local scope it was
/// created in.
Result<OptimisticBound> MakeUnivariateSiBound(
    const model::BackgroundModel& model, const linalg::Matrix& y,
    const si::DescriptionLengthParams& dl_params, size_t min_coverage);

}  // namespace sisd::search

#endif  // SISD_SEARCH_EXHAUSTIVE_SEARCH_HPP_
