#include "search/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/status.hpp"

namespace sisd::search {

size_t ThreadPool::ResolveNumThreads(int configured) {
  if (configured >= 1) {
    return std::min<size_t>(static_cast<size_t>(configured), kMaxThreads);
  }
  if (const char* env = std::getenv("SISD_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return std::min<size_t>(static_cast<size_t>(parsed), kMaxThreads);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<size_t>(std::max<size_t>(hw, 1), kMaxThreads);
}

ThreadPool::ThreadPool(size_t num_workers) : num_workers_(num_workers) {
  SISD_CHECK(num_workers >= 1);
  threads_.reserve(num_workers - 1);
  for (size_t id = 1; id < num_workers; ++id) {
    threads_.emplace_back([this, id] { WorkerLoop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelChunks(
    size_t n, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  SISD_CHECK(grain >= 1);
  if (n == 0) return;
  if (num_workers_ == 1 || n <= grain) {
    // Inline fast path: runs entirely on the calling thread, so it needs no
    // job state and may overlap other callers' jobs safely.
    for (size_t begin = 0; begin < n; begin += grain) {
      fn(begin, std::min(begin + grain, n), 0);
    }
    return;
  }

  // One job at a time: a shared pool serializes concurrent submitters here
  // (each still participates in its own job as worker 0 below).
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_n_ = n;
    job_grain_ = grain;
    job_cursor_.store(0, std::memory_order_relaxed);
    workers_active_ = threads_.size();
    ++job_generation_;
  }
  work_cv_.notify_all();

  RunJobChunks(/*worker_id=*/0);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return workers_active_ == 0; });
  job_fn_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
    }
    RunJobChunks(worker_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::RunJobChunks(size_t worker_id) {
  for (;;) {
    const size_t begin =
        job_cursor_.fetch_add(job_grain_, std::memory_order_relaxed);
    if (begin >= job_n_) return;
    (*job_fn_)(begin, std::min(begin + job_grain_, job_n_), worker_id);
  }
}

}  // namespace sisd::search
