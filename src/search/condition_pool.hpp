/// \file condition_pool.hpp
/// \brief The refinement alphabet of the beam search: all single-attribute
/// conditions considered, with precomputed row bitmasks.
///
/// Following the paper's Cortana settings (§III): numeric (and ordinal)
/// attributes contribute `<=` and `>=` conditions at `num_splits` quantile
/// split points (default 4: the 1/5..4/5 percentiles); categorical and
/// binary attributes contribute one equality condition per level. The full
/// description language of §II-A also has set exclusion (`!=`); opting in
/// via `include_exclusions` adds one exclusion per level for categorical
/// attributes with at least three levels (for binary attributes `!= v`
/// already equals `== !v`).
///
/// For dataset versions that append rows, `BuildIncremental` derives the
/// child pool from the parent's: conditions whose split threshold (or
/// level) survives in the child's alphabet extend the parent bitset in
/// place and evaluate only the appended rows; thresholds that moved (the
/// child's quantiles shifted) rebuild from scratch. Both paths run the
/// same candidate enumeration and filters, so the result is bit-identical
/// to `Build` on the grown table.

#ifndef SISD_SEARCH_CONDITION_POOL_HPP_
#define SISD_SEARCH_CONDITION_POOL_HPP_

#include <vector>

#include "data/table.hpp"
#include "pattern/condition.hpp"
#include "pattern/extension.hpp"

namespace sisd::search {

/// \brief How an incremental pool refresh was served, per condition.
struct IncrementalPoolStats {
  size_t reused = 0;   ///< extensions extended in place from the parent
  size_t rebuilt = 0;  ///< extensions evaluated from scratch
};

/// \brief Precomputed candidate conditions + their extensions.
class ConditionPool {
 public:
  /// Builds the pool for `table` with `num_splits` quantile split points per
  /// numeric attribute; `include_exclusions` opts in to `!=` conditions for
  /// categorical attributes with three or more levels (default: the paper's
  /// Cortana alphabet, no exclusions). Conditions that match no row or all
  /// rows are kept out of the pool (they cannot change any extension), and
  /// conditions whose extensions are bit-identical to an earlier
  /// condition's are dropped (quantile ties on low-cardinality numeric
  /// columns would otherwise add duplicate candidates scored at every beam
  /// level; the first condition with a given extension wins).
  static ConditionPool Build(const data::DataTable& table, int num_splits = 4,
                             bool include_exclusions = false);

  /// Builds the pool for `table` reusing `parent`, the pool previously
  /// built (with the same `num_splits`/`include_exclusions`) over the
  /// first `parent_rows` rows of `table` — i.e. `table` is a row-append
  /// version of the parent's table. Bit-identical to `Build(table, ...)`;
  /// `stats` (optional) reports how many conditions were served by
  /// extending parent bitsets vs rebuilt because their threshold moved.
  static ConditionPool BuildIncremental(const data::DataTable& table,
                                        const ConditionPool& parent,
                                        size_t parent_rows,
                                        int num_splits = 4,
                                        bool include_exclusions = false,
                                        IncrementalPoolStats* stats = nullptr);

  /// Number of conditions in the pool.
  size_t size() const { return conditions_.size(); }

  /// Condition by pool index.
  const pattern::Condition& condition(size_t idx) const {
    SISD_DCHECK(idx < conditions_.size());
    return conditions_[idx];
  }

  /// Precomputed extension (matching rows) of condition `idx`.
  const pattern::Extension& extension(size_t idx) const {
    SISD_DCHECK(idx < extensions_.size());
    return extensions_[idx];
  }

 private:
  std::vector<pattern::Condition> conditions_;
  std::vector<pattern::Extension> extensions_;
};

}  // namespace sisd::search

#endif  // SISD_SEARCH_CONDITION_POOL_HPP_
