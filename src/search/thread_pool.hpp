/// \file thread_pool.hpp
/// \brief Minimal internal worker pool for parallel candidate scoring.
///
/// The beam search scores each level's candidate batch in chunks; chunks
/// are claimed dynamically (atomic cursor) for load balance, but every
/// result is written to its candidate's index, so the merged output is
/// independent of the thread count and of scheduling (bit-deterministic).
///
/// A pool may be shared by many owners (the serve layer runs one pool for
/// all live sessions instead of a per-search pool): `ParallelChunks` is
/// safe to call from multiple threads concurrently — jobs are serialized
/// through a submission lock, so the workers run one job at a time and a
/// session's scores never interleave with another's.
///
/// Thread count resolution order: explicit `SearchConfig::num_threads` >
/// `SISD_THREADS` environment variable > `std::thread::hardware_concurrency`.

#ifndef SISD_SEARCH_THREAD_POOL_HPP_
#define SISD_SEARCH_THREAD_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sisd::search {

/// \brief Fixed-size worker pool. Worker 0 is the calling thread; the pool
/// spawns `num_workers - 1` additional threads.
class ThreadPool {
 public:
  /// Resolves a configured thread count: values >= 1 are taken as-is
  /// (clamped to `kMaxThreads`); 0 defers to the `SISD_THREADS` environment
  /// variable, then to the hardware concurrency (at least 1).
  static size_t ResolveNumThreads(int configured);

  static constexpr size_t kMaxThreads = 256;

  /// Creates a pool with `num_workers` total workers (>= 1).
  explicit ThreadPool(size_t num_workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Total workers, including the calling thread.
  size_t num_workers() const { return num_workers_; }

  /// Runs `fn(begin, end, worker_id)` over `[0, n)` in chunks of at most
  /// `grain` items, claimed dynamically. Blocks until every chunk ran.
  /// `fn` must be safe to call concurrently with distinct `worker_id`s
  /// (`worker_id < num_workers()`). Callable from multiple threads at
  /// once: concurrent jobs run back to back, never interleaved. The
  /// calling thread always participates as worker 0 (even while another
  /// caller's job holds the helpers), so progress never depends on being
  /// granted the pool.
  void ParallelChunks(size_t n, size_t grain,
                      const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t worker_id);
  void RunJobChunks(size_t worker_id);

  const size_t num_workers_;
  std::vector<std::thread> threads_;

  /// Serializes whole jobs when several owners submit concurrently.
  std::mutex submit_mu_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals a new job or shutdown
  std::condition_variable done_cv_;   ///< signals job completion
  uint64_t job_generation_ = 0;       ///< bumped per ParallelChunks call
  size_t workers_active_ = 0;         ///< helpers still inside the job
  bool shutdown_ = false;

  // Current job (valid while workers_active_ > 0 or caller is in the job).
  const std::function<void(size_t, size_t, size_t)>* job_fn_ = nullptr;
  size_t job_n_ = 0;
  size_t job_grain_ = 1;
  std::atomic<size_t> job_cursor_{0};
};

}  // namespace sisd::search

#endif  // SISD_SEARCH_THREAD_POOL_HPP_
