#include "search/exhaustive_search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace sisd::search {

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kLog2Pi = 1.8378770664093453;

struct DfsContext {
  const data::DataTable* table;
  const ConditionPool* pool;
  const ExhaustiveConfig* config;
  const QualityFunction* quality;
  const OptimisticBound* bound;
  Clock::time_point deadline;

  ExhaustiveResult result;
  double incumbent = -std::numeric_limits<double>::infinity();
  /// Candidates considered since the last deadline check. The deadline is
  /// re-checked every 256 candidates (the batch engine's chunk
  /// granularity), not just at node entry — a single node can have
  /// thousands of children, which used to overshoot the budget by the full
  /// cost of one expansion.
  size_t ticks = 0;
};

/// Expands the node (intention, extension) by conditions with pool index
/// greater than `last_cid` (canonical enumeration: each condition set is
/// visited exactly once, in increasing index order).
void Dfs(DfsContext* ctx, const pattern::Intention& intention,
         const pattern::Extension& extension, size_t last_cid, int depth) {
  if (depth >= ctx->config->max_depth) return;
  if (Clock::now() >= ctx->deadline) {
    ctx->result.completed = false;
    return;
  }
  // Branch-and-bound: can any refinement of this node beat the incumbent?
  if (ctx->bound != nullptr && !intention.empty()) {
    const double optimistic = (*ctx->bound)(intention, extension);
    if (optimistic <= ctx->incumbent) {
      ++ctx->result.num_pruned_nodes;
      return;
    }
  }
  const size_t n = ctx->table->num_rows();
  const size_t start = intention.empty() ? 0 : last_cid + 1;
  for (size_t cid = start; cid < ctx->pool->size(); ++cid) {
    if ((++ctx->ticks & 255) == 0 && Clock::now() >= ctx->deadline) {
      ctx->result.completed = false;
      return;
    }
    const pattern::Condition& cond = ctx->pool->condition(cid);
    if (!intention.AllowsRefinementWith(cond)) continue;
    pattern::Extension child_ext =
        pattern::Extension::Intersect(extension, ctx->pool->extension(cid));
    if (child_ext.count() < std::max<size_t>(ctx->config->min_coverage, 1) ||
        child_ext.count() == n) {
      continue;
    }
    const pattern::Intention child = intention.Extended(cond);
    const double q = (*ctx->quality)(child, child_ext);
    ++ctx->result.num_evaluated;
    if (q > ctx->incumbent) {
      ctx->incumbent = q;
      ctx->result.best.intention = child;
      ctx->result.best.extension = child_ext;
      ctx->result.best.quality = q;
    }
    Dfs(ctx, child, child_ext, cid, depth + 1);
    if (!ctx->result.completed) return;
  }
}

}  // namespace

ExhaustiveResult ExhaustiveSearch(const data::DataTable& table,
                                  const ConditionPool& pool,
                                  const ExhaustiveConfig& config,
                                  const QualityFunction& quality,
                                  const OptimisticBound* bound) {
  SISD_CHECK(config.max_depth >= 1);
  DfsContext ctx;
  ctx.table = &table;
  ctx.pool = &pool;
  ctx.config = &config;
  ctx.quality = &quality;
  ctx.bound = bound;
  ctx.deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::isfinite(config.time_budget_seconds)
                                 ? config.time_budget_seconds
                                 : 1e9));
  const pattern::Extension all(table.num_rows(), /*full=*/true);
  Dfs(&ctx, pattern::Intention(), all, 0, 0);
  return std::move(ctx.result);
}

Result<OptimisticBound> MakeUnivariateSiBound(
    const model::BackgroundModel& model, const linalg::Matrix& y,
    const si::DescriptionLengthParams& dl_params, size_t min_coverage) {
  if (model.dim() != 1) {
    return Status::InvalidArgument(
        "tight SI bound requires a univariate target");
  }
  if (model.num_groups() != 1) {
    return Status::InvalidArgument(
        "tight SI bound requires the initial (single-group) model");
  }
  if (y.cols() != 1 || y.rows() != model.num_rows()) {
    return Status::InvalidArgument("target matrix shape mismatch");
  }
  const double mu = model.group(0).mu[0];
  const double sigma2 = model.group(0).sigma(0, 0);
  if (!(sigma2 > 0.0)) {
    return Status::NumericalError("nonpositive model variance");
  }
  const double gamma = dl_params.gamma;
  const double eta = dl_params.eta;
  const size_t min_cov = std::max<size_t>(min_coverage, 1);

  // Non-owning: the closure must not outlive the caller's target matrix
  // (see the header's lifetime note). A pointer makes the capture explicit
  // — the previous `[&y, ...]` silently bound a reference to whatever
  // matrix happened to be passed, dangling once it went out of scope.
  const linalg::Matrix* targets = &y;
  OptimisticBound bound = [targets, mu, sigma2, gamma, eta, min_cov](
                              const pattern::Intention& intention,
                              const pattern::Extension& extension) {
    // Collect and sort the node's target values.
    std::vector<double> values;
    values.reserve(extension.count());
    for (size_t i : extension.ToRows()) values.push_back((*targets)(i, 0));
    std::sort(values.begin(), values.end());
    const size_t m = values.size();
    if (m < min_cov) return -std::numeric_limits<double>::infinity();

    // Prefix sums for bottom-k and top-k means.
    std::vector<double> prefix(m + 1, 0.0);
    for (size_t i = 0; i < m; ++i) prefix[i + 1] = prefix[i] + values[i];
    const double total = prefix[m];

    double best_ic = -std::numeric_limits<double>::infinity();
    for (size_t k = min_cov; k <= m; ++k) {
      const double dk = double(k);
      const double bottom_mean = prefix[k] / dk;
      const double top_mean = (total - prefix[m - k]) / dk;
      const double shift = std::max(std::fabs(bottom_mean - mu),
                                    std::fabs(top_mean - mu));
      const double ic = 0.5 * (kLog2Pi + std::log(sigma2 / dk)) +
                        dk * shift * shift / (2.0 * sigma2);
      best_ic = std::max(best_ic, ic);
    }
    // Every strict refinement carries at least one more condition, so its
    // DL is at least gamma*(|C|+1)+eta. For nonnegative IC the SI bound is
    // IC/minDL; for negative IC, SI = IC'/DL' <= best_ic/DL' < 0 approaches
    // 0 from below as DL' grows, so 0 is the valid supremum.
    const double min_descendant_dl =
        gamma * double(intention.size() + 1) + eta;
    return best_ic >= 0.0 ? best_ic / min_descendant_dl : 0.0;
  };
  return bound;
}

}  // namespace sisd::search
