/// \file list_miner.hpp
/// \brief Greedy SSD++-style subgroup-list miner on the batch engine.
///
/// Where the paper's dialogue returns one pattern per iteration and evolves
/// the *background model*, a subgroup **list** is an ordered rule set with
/// first-match-wins routing: a row is explained by the first rule whose
/// extension contains it, and by the dataset-marginal *default rule*
/// otherwise (si/list_gain.hpp). The miner is greedy: each round it runs
/// the regular beam search over the full condition pool, scoring every
/// candidate by the list-level compression gain of the rows the candidate
/// would newly capture, appends the best rule, removes its rows from the
/// uncovered set, and repeats until no candidate gains (or a rule budget is
/// exhausted).
///
/// Determinism: candidate generation order, chunked parallel scoring, and
/// index-order merging all come from `BeamSearch`, and the gain is a pure
/// function of the candidate plus the (fixed-per-round) uncovered set — so
/// the mined list is bit-identical for any thread count and `SISD_KERNELS`
/// setting. `ExtendSubgroupListReference` re-derives every candidate's gain
/// from scratch (materialized bitsets, no caching, no parallelism); the
/// differential test `list_miner_test` holds the two bit-equal.

#ifndef SISD_SEARCH_LIST_MINER_HPP_
#define SISD_SEARCH_LIST_MINER_HPP_

#include <vector>

#include "data/table.hpp"
#include "linalg/matrix.hpp"
#include "pattern/condition.hpp"
#include "pattern/extension.hpp"
#include "search/beam_search.hpp"
#include "search/condition_pool.hpp"
#include "search/thread_pool.hpp"
#include "si/list_gain.hpp"

namespace sisd::search {

/// \brief Settings of one list-extension call.
struct ListSearchConfig {
  /// Per-round candidate search (beam width, depth, coverage bounds,
  /// threads — all reused as-is; `top_k` only affects diagnostics since
  /// the miner takes the single best candidate per round).
  SearchConfig search;
  /// Gain criterion knobs.
  si::ListGainParams gain;
  /// Maximum rules appended by this call (>= 1).
  int max_rules = 8;
  /// A rule must newly capture at least this many rows (floored to 1).
  size_t min_captured = 2;
};

/// \brief One rule of a subgroup list.
struct SubgroupRule {
  pattern::Intention intention;
  /// All rows matching the intention.
  pattern::Extension extension{0};
  /// Rows this rule actually explains: `extension` minus everything
  /// earlier rules captured (first match wins).
  pattern::Extension captured{0};
  /// Local normal model fitted on `captured`.
  si::LocalNormalModel local;
  /// List-level gain at insertion time (the quality the rule won with).
  double gain = 0.0;
};

/// \brief An ordered subgroup list plus the state needed to extend it.
struct SubgroupList {
  /// The default rule: dataset-marginal per-dimension normal model, fitted
  /// once over all rows and fixed for the list's lifetime.
  si::LocalNormalModel default_model;
  std::vector<SubgroupRule> rules;
  /// Rows not captured by any rule yet (routed to the default rule).
  pattern::Extension uncovered{0};
  /// Sum of rule gains, accumulated in rule order.
  double total_gain = 0.0;
};

/// \brief Diagnostics of one `ExtendSubgroupList` call.
struct ListMineStats {
  size_t rules_appended = 0;
  size_t num_evaluated = 0;
  /// No appendable rule remains: every candidate's gain is <= 0 (or the
  /// uncovered set is too small to capture from).
  bool exhausted = false;
  bool hit_time_budget = false;
};

/// \brief Builds an empty list over `targets`: every row uncovered, the
/// default model fitted through the same kernel-moments path the miner
/// scores with. Deterministic (and ISA-invariant, by the lane contract).
SubgroupList MakeEmptySubgroupList(const linalg::Matrix& targets,
                                   const si::ListGainParams& gain);

/// \brief Appends up to `config.max_rules` greedily chosen rules to
/// `*list` (which must have been initialized by `MakeEmptySubgroupList`
/// or by replaying rules). Scores through `shared_workers` when non-null,
/// a per-call pool otherwise; output is identical either way.
ListMineStats ExtendSubgroupList(const data::DataTable& table,
                                 const linalg::Matrix& targets,
                                 const ConditionPool& pool,
                                 const ListSearchConfig& config,
                                 SubgroupList* list,
                                 ThreadPool* shared_workers = nullptr);

/// \brief Naive single-threaded reference: identical beam enumeration, but
/// every candidate's gain is recomputed directly — materialize the
/// candidate extension, intersect with the uncovered set, take moments on
/// the materialized bitset — with no per-worker scratch, caching, or
/// fused-mask shortcuts. Exists for the differential test; bit-identical
/// to `ExtendSubgroupList` by the kernel lane contract.
ListMineStats ExtendSubgroupListReference(const data::DataTable& table,
                                          const linalg::Matrix& targets,
                                          const ConditionPool& pool,
                                          const ListSearchConfig& config,
                                          SubgroupList* list);

/// \brief Re-applies a saved rule to `*list` without searching: pushes the
/// rule, removes its extension from the uncovered set, and accumulates its
/// gain — the exact state updates `ExtendSubgroupList` performs when it
/// appends. Snapshot restore replays history through this, so a restored
/// list continues mining bit-identically to one that never stopped.
void ReplaySubgroupRule(SubgroupRule rule, SubgroupList* list);

/// \brief Rebuilds a rule from its intention against (possibly different)
/// data: evaluates the extension on `table`, intersects with `list`'s
/// current uncovered set, refits the local model on the captured rows and
/// rescores the gain against `list`'s default model. This is how a session
/// rebased onto an appended dataset version rewrites its list history —
/// the derived numbers are exactly what `ExtendSubgroupList` would have
/// produced had it appended this intention on the new data. Fails when the
/// rule would capture no rows. Does not mutate `list`; follow up with
/// `ReplaySubgroupRule` to apply the result.
Result<SubgroupRule> RederiveSubgroupRule(const data::DataTable& table,
                                          const linalg::Matrix& targets,
                                          const si::ListGainParams& gain,
                                          const pattern::Intention& intention,
                                          const SubgroupList& list);

}  // namespace sisd::search

#endif  // SISD_SEARCH_LIST_MINER_HPP_
