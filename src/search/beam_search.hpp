/// \file beam_search.hpp
/// \brief Level-wise beam search over conjunctions of conditions
/// (paper §II-D, "Location pattern").
///
/// The search is generic in the quality scorer, so the same engine drives
/// (a) the SI-based location-pattern search of the paper and (b) the
/// baseline quality measures used for comparison. Per beam level the search
/// generates one candidate batch and scores it through a `BatchEvaluator`
/// (in parallel when the evaluator allows it); the beam keeps the
/// `beam_width` best per level and a global top-`k` list collects the best
/// subgroups seen anywhere in the search. Results are merged in candidate
/// generation order, so the output is bit-identical for any thread count.
/// A `QualityFunction` callback overload is kept for arbitrary measures.

#ifndef SISD_SEARCH_BEAM_SEARCH_HPP_
#define SISD_SEARCH_BEAM_SEARCH_HPP_

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "data/table.hpp"
#include "pattern/condition.hpp"
#include "pattern/extension.hpp"
#include "search/batch_evaluator.hpp"
#include "search/condition_pool.hpp"
#include "search/thread_pool.hpp"

namespace sisd::search {

/// \brief Beam search settings (defaults = the paper's Cortana settings).
struct SearchConfig {
  int beam_width = 40;       ///< candidates kept per level
  int max_depth = 4;         ///< maximum number of conditions
  int num_split_points = 4;  ///< numeric split points (1/5..4/5 percentiles)
  /// Emit `!=` set-exclusion conditions (§II-A) for categorical attributes
  /// with at least three levels. Off by default: the paper's experiments
  /// use the Cortana alphabet (`<=`, `>=`, `=` only), and the default must
  /// keep reproducing them byte for byte.
  bool include_exclusions = false;
  size_t top_k = 150;        ///< size of the global result list
  size_t min_coverage = 2;   ///< minimum subgroup size
  /// Maximum subgroup size as a fraction of the data (1.0 = no limit other
  /// than "not all rows", which is enforced by the condition pool).
  double max_coverage_fraction = 1.0;
  /// Wall-clock budget; the search stops gracefully when exceeded.
  double time_budget_seconds = std::numeric_limits<double>::infinity();
  /// Scoring threads: >= 1 is taken literally; 0 resolves through the
  /// `SISD_THREADS` environment variable, then hardware concurrency. Only
  /// used when the evaluator supports parallel scoring. As long as the
  /// search does not hit the wall-clock budget, the output is bit-identical
  /// for every setting; a search cut off by `time_budget_seconds` returns
  /// a timing-dependent partial result (as any wall-clock cutoff must).
  int num_threads = 0;
};

/// \brief Quality callback: returns the score of a candidate subgroup.
/// Return -inf to reject a candidate entirely (it will not enter the beam
/// nor the result list).
using QualityFunction = std::function<double(
    const pattern::Intention&, const pattern::Extension&)>;

/// \brief One scored subgroup in the search output.
struct ScoredSubgroup {
  pattern::Intention intention;
  pattern::Extension extension{0};
  double quality = -std::numeric_limits<double>::infinity();
};

/// \brief Outcome of a beam search run.
struct SearchResult {
  /// Top subgroups in descending quality order (deduplicated by canonical
  /// intention signature).
  std::vector<ScoredSubgroup> top;
  /// Number of candidate evaluations performed.
  size_t num_evaluated = 0;
  /// True iff the search stopped because of the time budget.
  bool hit_time_budget = false;

  /// The single best subgroup; aborts when `top` is empty.
  const ScoredSubgroup& best() const {
    SISD_CHECK(!top.empty());
    return top.front();
  }
};

/// \brief Runs beam search over `pool`, scoring candidate batches through
/// `evaluator` (the primary engine entry point).
///
/// When `shared_workers` is non-null the search scores through that pool
/// (whose worker count overrides `config.num_threads`) instead of spinning
/// up a per-call pool — the serve layer shares one pool across all live
/// sessions this way. Results stay bit-identical either way: the output is
/// invariant to the thread count.
SearchResult BeamSearch(const data::DataTable& table,
                        const ConditionPool& pool, const SearchConfig& config,
                        BatchEvaluator& evaluator,
                        ThreadPool* shared_workers = nullptr);

/// \brief Callback compatibility overload: wraps `quality` in a
/// single-threaded batch evaluator (arbitrary callbacks are not assumed
/// thread-safe). Behaviour and results match the batch entry point.
SearchResult BeamSearch(const data::DataTable& table,
                        const ConditionPool& pool, const SearchConfig& config,
                        const QualityFunction& quality);

}  // namespace sisd::search

#endif  // SISD_SEARCH_BEAM_SEARCH_HPP_
