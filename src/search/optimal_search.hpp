/// \file optimal_search.hpp
/// \brief Kernel-backed parallel best-first branch-and-bound for provably
/// optimal location patterns (paper §V future work; bounds after Boley et
/// al., ECML-PKDD 2017).
///
/// `ExhaustiveSearch` (exhaustive_search.hpp) remains the reference
/// implementation: a sequential DFS over a per-candidate `std::function`
/// callback, where every child materializes a fresh `Extension` and every
/// bound call re-gathers and re-sorts the node's target values. This module
/// is the engine-native rebuild of the same search:
///
///  - **No per-node sort.** Rows are ordered once, globally, by target
///    value. A node's bottom-k/top-k prefix-sum bound is computed by
///    scattering its member rows into a rank-space bitset (per-worker
///    scratch, reused across nodes) and sweeping the set bits in ascending
///    rank order — the values come out sorted with no comparison sort and
///    no per-node allocation.
///  - **Kernel-routed hot path.** Candidate coverage and child extensions
///    go through the dispatched `kernels::count_and2` / `and_into`;
///    univariate candidates are scored through
///    `si::EvaluationContext::MaskedTargetMomentsAnd` — one fused pass
///    yields count, sum, and the SI score, with nothing materialized for
///    leaf candidates.
///  - **Best-first expansion.** A priority queue ordered by optimistic
///    bound replaces DFS, so the incumbent tightens early and dominated
///    subtrees are cut before they are ever expanded. Waves of nodes are
///    expanded in parallel across the shared `search::ThreadPool`, with a
///    shared atomic incumbent.
///
/// ## Determinism
///
/// The returned optimum is **bit-identical for any thread count and any
/// `SISD_KERNELS` setting**, and matches what `ExhaustiveSearch` finds:
///
///  - pruning is *strict* (`bound < incumbent`), so every candidate whose
///    quality ties the optimum is always enumerated, regardless of how
///    fast any thread tightened the incumbent;
///  - incumbent updates use a canonical total order — higher quality wins,
///    exact ties go to the lexicographically smaller (sorted) condition-id
///    vector — which is exactly the candidate DFS pre-order enumeration
///    would have kept first.
///
/// The `num_evaluated` / `num_pruned_nodes` counters, by contrast, depend
/// on how early each worker observed the tightening incumbent: they are
/// deterministic only for `num_threads = 1`.
///
/// ## Memory
///
/// Best-first trades memory for pruning: the frontier holds every
/// generated-but-unexpanded interior node (depth <= max_depth - 2; nodes at
/// `max_depth - 1` only produce leaf candidates, which are scored without
/// ever being materialized or queued). At the canonical depth 2 the
/// frontier is at most one node per pool condition.

#ifndef SISD_SEARCH_OPTIMAL_SEARCH_HPP_
#define SISD_SEARCH_OPTIMAL_SEARCH_HPP_

#include <cstdint>
#include <limits>

#include "data/table.hpp"
#include "linalg/matrix.hpp"
#include "model/background_model.hpp"
#include "search/beam_search.hpp"
#include "search/condition_pool.hpp"
#include "search/thread_pool.hpp"
#include "si/interestingness.hpp"

namespace sisd::search {

/// \brief Settings for the optimal search.
struct OptimalConfig {
  int max_depth = 2;        ///< maximum number of conditions
  size_t min_coverage = 2;  ///< minimum subgroup size
  /// Wall-clock budget, checked every 256 candidates (the batch engine's
  /// chunk granularity). When exceeded the search returns the incumbent
  /// and reports `completed = false`.
  double time_budget_seconds = std::numeric_limits<double>::infinity();
  /// Worker threads: >= 1 literal; 0 resolves `SISD_THREADS`, then
  /// hardware concurrency (ignored when a shared pool is passed).
  int num_threads = 0;
  /// Disables the optimistic bound (pure best-first enumeration). The
  /// bound is also skipped automatically when it does not apply: it
  /// requires a univariate target under the initial single-group model.
  bool use_bound = true;
};

/// \brief Outcome of an optimal search run.
struct OptimalResult {
  /// The provably global optimum over the description language (when
  /// `completed`); quality is the location-pattern SI.
  ScoredSubgroup best;
  size_t num_evaluated = 0;     ///< candidates scored (see Determinism)
  size_t num_pruned_nodes = 0;  ///< subtrees cut by the bound
  size_t num_expanded = 0;      ///< interior nodes expanded
  bool used_bound = false;      ///< bound precomputed and active
  bool completed = true;        ///< false iff the time budget was hit
};

/// \brief Mines the optimal location pattern for `model` over `pool`.
///
/// Scores candidates with the location-pattern SI (`si::ScoreLocation`
/// semantics, bit-identical to both the free functions and the beam
/// search's `SiLocationEvaluator`). Works for any model (multivariate
/// targets, evolved multi-group models); the tight optimistic bound only
/// engages in the univariate single-group setting (`used_bound` reports
/// whether it did).
///
/// When `shared_workers` is non-null its worker count overrides
/// `config.num_threads` and no per-call pool is spun up.
OptimalResult OptimalLocationSearch(const data::DataTable& table,
                                    const ConditionPool& pool,
                                    const model::BackgroundModel& model,
                                    const linalg::Matrix& targets,
                                    const si::DescriptionLengthParams& dl,
                                    const OptimalConfig& config,
                                    ThreadPool* shared_workers = nullptr);

}  // namespace sisd::search

#endif  // SISD_SEARCH_OPTIMAL_SEARCH_HPP_
