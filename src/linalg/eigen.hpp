/// \file eigen.hpp
/// \brief Symmetric eigendecomposition via cyclic Jacobi rotations.
///
/// Used to (a) initialize the spread-direction optimizer from the extreme
/// generalized-variance directions, and (b) build the anisotropic clusters of
/// the synthetic dataset (Section III-A of the paper).

#ifndef SISD_LINALG_EIGEN_HPP_
#define SISD_LINALG_EIGEN_HPP_

#include <vector>

#include "common/status.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace sisd::linalg {

/// \brief Result of a symmetric eigendecomposition `A = V diag(w) V'`.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  Vector eigenvalues;
  /// Orthonormal eigenvectors as matrix columns, ordered like `eigenvalues`.
  Matrix eigenvectors;

  /// Returns eigenvector `k` (column copy).
  Vector Eigenvector(size_t k) const { return eigenvectors.Col(k); }
};

/// \brief Computes the full eigendecomposition of symmetric `a`.
///
/// Uses the cyclic Jacobi method: numerically robust for the small dense
/// matrices used here (dy <= a few hundred). Returns NumericalError when the
/// iteration does not converge (pathological input such as NaN entries).
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          int max_sweeps = 64,
                                          double tol = 1e-12);

/// \brief Convenience wrapper that aborts on failure.
EigenDecomposition SymmetricEigenOrDie(const Matrix& a);

}  // namespace sisd::linalg

#endif  // SISD_LINALG_EIGEN_HPP_
