#include "linalg/vector.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace sisd::linalg {

Vector& Vector::operator+=(const Vector& other) {
  SISD_DCHECK(size() == other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  SISD_DCHECK(size() == other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scale) {
  for (double& v : data_) v *= scale;
  return *this;
}

Vector& Vector::operator/=(double scale) {
  SISD_DCHECK(scale != 0.0);
  for (double& v : data_) v /= scale;
  return *this;
}

void Vector::AssignDifference(const Vector& a, const Vector& b) {
  SISD_DCHECK(a.size() == b.size());
  data_.resize(a.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] = a.data_[i] - b.data_[i];
  }
}

Vector& Vector::AddScaled(const Vector& other, double scale) {
  SISD_DCHECK(size() == other.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
  return *this;
}

double Vector::Dot(const Vector& other) const {
  SISD_DCHECK(size() == other.size());
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) acc += data_[i] * other.data_[i];
  return acc;
}

double Vector::Norm() const { return std::sqrt(SquaredNorm()); }

double Vector::SquaredNorm() const { return Dot(*this); }

double Vector::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Vector::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

Vector Vector::Normalized() const {
  double norm = Norm();
  SISD_CHECK(norm > 0.0);
  Vector out = *this;
  out /= norm;
  return out;
}

void Vector::Fill(double value) {
  for (double& v : data_) v = value;
}

bool Vector::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::string Vector::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < data_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.6g", data_[i]);
  }
  out += "]";
  return out;
}

Vector operator+(Vector a, const Vector& b) {
  a += b;
  return a;
}

Vector operator-(Vector a, const Vector& b) {
  a -= b;
  return a;
}

Vector operator*(Vector a, double s) {
  a *= s;
  return a;
}

Vector operator*(double s, Vector a) {
  a *= s;
  return a;
}

Vector operator/(Vector a, double s) {
  a /= s;
  return a;
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  SISD_CHECK(a.size() == b.size());
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

}  // namespace sisd::linalg
