/// \file cholesky.hpp
/// \brief Cholesky (LL') factorization of symmetric positive-definite
/// matrices, with solve / inverse / log-determinant.
///
/// The background model needs, per candidate subgroup, the log-determinant of
/// and a quadratic form with the covariance of the subgroup-mean statistic
/// (Eq. 13 of the paper); both come out of one factorization.

#ifndef SISD_LINALG_CHOLESKY_HPP_
#define SISD_LINALG_CHOLESKY_HPP_

#include "common/status.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace sisd::linalg {

/// \brief Lower-triangular Cholesky factor of an SPD matrix.
///
/// Construct via `Cholesky::Compute`. All query methods require a
/// successfully computed factorization.
class Cholesky {
 public:
  /// Factorizes symmetric positive-definite `a` as `L L'`.
  /// Returns NumericalError if `a` is not (numerically) SPD.
  static Result<Cholesky> Compute(const Matrix& a);

  /// Rebuilds a factorization from an explicit lower-triangular factor
  /// (snapshot restore): `l` must be square with strictly positive, finite
  /// diagonal entries; entries above the diagonal are ignored and zeroed.
  static Result<Cholesky> FromFactor(Matrix l);

  /// Dimension of the factored matrix.
  size_t dim() const { return l_.rows(); }

  /// The lower-triangular factor `L`.
  const Matrix& L() const { return l_; }

  /// Solves `A x = b` using forward + back substitution.
  Vector Solve(const Vector& b) const;

  /// Solves `A X = B` column-wise.
  Matrix SolveMatrix(const Matrix& b) const;

  /// Solves `L z = b` (forward substitution only). Useful for whitening:
  /// if `A = L L'` and `z = L^{-1}(x - mu)` then `z ~ N(0, I)`.
  Vector ForwardSolve(const Vector& b) const;

  /// Allocation-free forward solve into `*z` (resized if needed). `z` must
  /// not alias `b`.
  void ForwardSolveInto(const Vector& b, Vector* z) const;

  /// The inverse `A^{-1}` as a dense (symmetric) matrix.
  Matrix Inverse() const;

  /// `log |A| = 2 * sum_i log L_ii`.
  double LogDeterminant() const;

  /// Quadratic form with the inverse: `b' A^{-1} b`, via one forward solve.
  double InverseQuadraticForm(const Vector& b) const;

  /// Allocation-free variant: uses `*scratch` for the forward solve.
  /// Bit-identical to `InverseQuadraticForm(b)`.
  double InverseQuadraticForm(const Vector& b, Vector* scratch) const;

  /// \name Rank-one factor maintenance (O(d^2) instead of an O(d^3)
  /// refactorization). The background model's spread assimilation perturbs
  /// each group covariance by `alpha * v v'` (Eq. 11); these keep the cached
  /// factor in sync with that perturbation.
  /// @{

  /// In-place rank-one update: refactors to `L L' + x x'`. Always succeeds
  /// (the updated matrix is SPD whenever the original was). `x` is consumed
  /// as scratch.
  void RankOneUpdate(Vector x);

  /// In-place rank-one downdate: refactors to `L L' - x x'`. Fails with
  /// NumericalError when the downdated matrix is not (numerically) positive
  /// definite; the factor is left in an unspecified state on failure and
  /// must be discarded. `x` is consumed as scratch.
  Status RankOneDowndate(Vector x);

  /// Convenience dispatcher: refactors to `L L' + alpha * v v'`.
  /// No-op when `alpha == 0`; update when positive, downdate when negative
  /// (with the downdate's failure contract).
  Status RankOne(const Vector& v, double alpha);

  /// @}

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}

  Matrix l_;
};

/// \brief Convenience: inverse of an SPD matrix (aborts if not SPD).
Matrix SpdInverse(const Matrix& a);

/// \brief Convenience: log-determinant of an SPD matrix (aborts if not SPD).
double SpdLogDeterminant(const Matrix& a);

/// \brief Solves the SPD system `A x = b` (aborts if not SPD).
Vector SpdSolve(const Matrix& a, const Vector& b);

}  // namespace sisd::linalg

#endif  // SISD_LINALG_CHOLESKY_HPP_
