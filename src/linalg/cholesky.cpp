#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace sisd::linalg {

Result<Cholesky> Cholesky::Compute(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    const double* lrow_j = l.RowData(j);
    for (size_t k = 0; k < j; ++k) diag -= lrow_j[k] * lrow_j[k];
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return Status::NumericalError(StrFormat(
          "matrix not positive definite at pivot %zu (value %.6g)", j, diag));
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      const double* lrow_i = l.RowData(i);
      for (size_t k = 0; k < j; ++k) acc -= lrow_i[k] * lrow_j[k];
      l(i, j) = acc / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Result<Cholesky> Cholesky::FromFactor(Matrix l) {
  if (!l.IsSquare()) {
    return Status::InvalidArgument("Cholesky factor must be square");
  }
  const size_t n = l.rows();
  for (size_t i = 0; i < n; ++i) {
    const double d = l(i, i);
    if (!(d > 0.0) || !std::isfinite(d)) {
      return Status::NumericalError(StrFormat(
          "factor diagonal entry %zu not positive (value %.6g)", i, d));
    }
    for (size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
  }
  // With the upper triangle zeroed, any remaining NaN/Inf sits on or below
  // the diagonal and would silently poison every solve through the factor.
  if (!l.AllFinite()) {
    return Status::NumericalError("factor has non-finite entries");
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::Solve(const Vector& b) const {
  Vector z = ForwardSolve(b);
  // Back substitution: L' x = z.
  const size_t n = dim();
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double acc = z[ii];
    for (size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::SolveMatrix(const Matrix& b) const {
  SISD_CHECK(b.rows() == dim());
  Matrix out(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    Vector col = b.Col(c);
    Vector sol = Solve(col);
    for (size_t r = 0; r < b.rows(); ++r) out(r, c) = sol[r];
  }
  return out;
}

Vector Cholesky::ForwardSolve(const Vector& b) const {
  Vector z;
  ForwardSolveInto(b, &z);
  return z;
}

void Cholesky::ForwardSolveInto(const Vector& b, Vector* out) const {
  SISD_CHECK(b.size() == dim());
  SISD_CHECK(out != nullptr && out != &b);
  const size_t n = dim();
  if (out->size() != n) *out = Vector(n);
  Vector& z = *out;
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    const double* lrow = l_.RowData(i);
    for (size_t k = 0; k < i; ++k) acc -= lrow[k] * z[k];
    z[i] = acc / lrow[i];
  }
}

Matrix Cholesky::Inverse() const {
  const size_t n = dim();
  Matrix inv(n, n);
  // Solve A x = e_i for each basis vector.
  Vector e(n);
  for (size_t i = 0; i < n; ++i) {
    e.Fill(0.0);
    e[i] = 1.0;
    Vector x = Solve(e);
    for (size_t r = 0; r < n; ++r) inv(r, i) = x[r];
  }
  inv.Symmetrize();
  return inv;
}

double Cholesky::LogDeterminant() const {
  double acc = 0.0;
  for (size_t i = 0; i < dim(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

double Cholesky::InverseQuadraticForm(const Vector& b) const {
  Vector z = ForwardSolve(b);
  return z.SquaredNorm();
}

double Cholesky::InverseQuadraticForm(const Vector& b,
                                      Vector* scratch) const {
  ForwardSolveInto(b, scratch);
  return scratch->SquaredNorm();
}

void Cholesky::RankOneUpdate(Vector x) {
  SISD_CHECK(x.size() == dim());
  const size_t n = dim();
  // Givens-based LINPACK scheme: per column k, rotate (L_kk, x_k) into
  // (r, 0) and propagate the rotation down the column. O(n^2), and the
  // updated matrix L L' + x x' is SPD whenever L was, so no failure path.
  for (size_t k = 0; k < n; ++k) {
    const double lkk = l_(k, k);
    const double xk = x[k];
    const double r = std::sqrt(lkk * lkk + xk * xk);
    const double c = r / lkk;
    const double s = xk / lkk;
    l_(k, k) = r;
    for (size_t i = k + 1; i < n; ++i) {
      const double li = (l_(i, k) + s * x[i]) / c;
      x[i] = c * x[i] - s * li;
      l_(i, k) = li;
    }
  }
}

Status Cholesky::RankOneDowndate(Vector x) {
  SISD_CHECK(x.size() == dim());
  const size_t n = dim();
  // Hyperbolic-rotation analogue of the update: per column k the new pivot
  // is sqrt(L_kk^2 - x_k^2), which exists iff the downdated matrix is still
  // positive definite in that principal direction.
  for (size_t k = 0; k < n; ++k) {
    const double lkk = l_(k, k);
    const double xk = x[k];
    const double r2 = (lkk - xk) * (lkk + xk);  // lkk^2 - xk^2, less cancellation
    if (!(r2 > 0.0) || !std::isfinite(r2)) {
      return Status::NumericalError(StrFormat(
          "rank-one downdate loses positive definiteness at pivot %zu "
          "(value %.6g)",
          k, r2));
    }
    const double r = std::sqrt(r2);
    const double c = r / lkk;
    const double s = xk / lkk;
    l_(k, k) = r;
    for (size_t i = k + 1; i < n; ++i) {
      const double li = (l_(i, k) - s * x[i]) / c;
      x[i] = c * x[i] - s * li;
      l_(i, k) = li;
    }
  }
  return Status::OK();
}

Status Cholesky::RankOne(const Vector& v, double alpha) {
  SISD_CHECK(v.size() == dim());
  if (alpha == 0.0) return Status::OK();
  const double scale = std::sqrt(std::fabs(alpha));
  Vector x = v;
  x *= scale;
  if (alpha > 0.0) {
    RankOneUpdate(std::move(x));
    return Status::OK();
  }
  return RankOneDowndate(std::move(x));
}

Matrix SpdInverse(const Matrix& a) {
  Result<Cholesky> chol = Cholesky::Compute(a);
  chol.status().CheckOK();
  return chol.Value().Inverse();
}

double SpdLogDeterminant(const Matrix& a) {
  Result<Cholesky> chol = Cholesky::Compute(a);
  chol.status().CheckOK();
  return chol.Value().LogDeterminant();
}

Vector SpdSolve(const Matrix& a, const Vector& b) {
  Result<Cholesky> chol = Cholesky::Compute(a);
  chol.status().CheckOK();
  return chol.Value().Solve(b);
}

}  // namespace sisd::linalg
