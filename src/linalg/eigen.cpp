#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sisd::linalg {

namespace {

/// Sum of squares of off-diagonal entries.
double OffDiagonalNormSq(const Matrix& a) {
  double acc = 0.0;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = r + 1; c < a.cols(); ++c) {
      acc += 2.0 * a(r, c) * a(r, c);
    }
  }
  return acc;
}

}  // namespace

Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_sweeps,
                                          double tol) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  if (!a.AllFinite()) {
    return Status::NumericalError("SymmetricEigen: non-finite entries");
  }
  const size_t n = a.rows();
  Matrix d = a;
  d.Symmetrize();
  Matrix v = Matrix::Identity(n);

  const double frob = std::max(d.MaxAbs(), 1e-300);
  const double threshold = tol * tol * frob * frob * double(n) * double(n);

  bool converged = (n <= 1) || OffDiagonalNormSq(d) <= threshold;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable computation of tan(rotation angle).
        double t;
        if (std::fabs(theta) > 1e150) {
          t = 1.0 / (2.0 * theta);
        } else {
          t = 1.0 / (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
          if (theta < 0.0) t = -t;
        }
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        d(p, p) = app - t * apq;
        d(q, q) = aqq + t * apq;
        d(p, q) = 0.0;
        d(q, p) = 0.0;
        for (size_t k = 0; k < n; ++k) {
          if (k == p || k == q) continue;
          const double akp = d(k, p);
          const double akq = d(k, q);
          d(k, p) = akp - s * (akq + tau * akp);
          d(p, k) = d(k, p);
          d(k, q) = akq + s * (akp - tau * akq);
          d(q, k) = d(k, q);
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = vkp - s * (vkq + tau * vkp);
          v(k, q) = vkq + s * (vkp - tau * vkq);
        }
      }
    }
    converged = OffDiagonalNormSq(d) <= threshold;
  }
  if (!converged) {
    return Status::NumericalError("Jacobi eigendecomposition did not converge");
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return d(i, i) > d(j, j); });

  EigenDecomposition out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t k = 0; k < n; ++k) {
    out.eigenvalues[k] = d(order[k], order[k]);
    for (size_t r = 0; r < n; ++r) {
      out.eigenvectors(r, k) = v(r, order[k]);
    }
  }
  return out;
}

EigenDecomposition SymmetricEigenOrDie(const Matrix& a) {
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  eig.status().CheckOK();
  return std::move(eig).MoveValue();
}

}  // namespace sisd::linalg
