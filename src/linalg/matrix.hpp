/// \file matrix.hpp
/// \brief Dense row-major matrix with the operations needed by the FORSIED
/// background model: products, symmetric rank-1 updates, quadratic forms.

#ifndef SISD_LINALG_MATRIX_HPP_
#define SISD_LINALG_MATRIX_HPP_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "linalg/vector.hpp"

namespace sisd::linalg {

/// \brief Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Creates an empty (0x0) matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a zero matrix of shape `rows x cols`.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a constant matrix of shape `rows x cols`.
  Matrix(size_t rows, size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Creates a matrix from nested initializer lists (row major).
  /// All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Returns the `n x n` identity matrix.
  static Matrix Identity(size_t n);

  /// Returns a diagonal matrix with `diag` on the diagonal.
  static Matrix Diagonal(const Vector& diag);

  /// Returns the outer product `u * v'` (shape `u.size() x v.size()`).
  static Matrix OuterProduct(const Vector& u, const Vector& v);

  /// Number of rows.
  size_t rows() const { return rows_; }
  /// Number of columns.
  size_t cols() const { return cols_; }
  /// True iff the matrix is square.
  bool IsSquare() const { return rows_ == cols_; }

  /// Element access with debug bounds checking.
  double& operator()(size_t r, size_t c) {
    SISD_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    SISD_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row `r` (contiguous, `cols()` entries).
  double* RowData(size_t r) {
    SISD_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* RowData(size_t r) const {
    SISD_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Returns row `r` as a vector copy.
  Vector Row(size_t r) const;
  /// Returns column `c` as a vector copy.
  Vector Col(size_t c) const;
  /// Overwrites row `r` with `v` (dimension must match `cols()`).
  void SetRow(size_t r, const Vector& v);

  /// \name In-place arithmetic.
  /// @{
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scale);
  /// Adds `scale * other`.
  Matrix& AddScaled(const Matrix& other, double scale);
  /// Symmetric rank-1 update: `this += scale * v v'`. Requires square.
  Matrix& AddOuter(const Vector& v, double scale);
  /// @}

  /// Matrix-vector product `A x`.
  Vector MatVec(const Vector& x) const;

  /// Transposed matrix-vector product `A' x`.
  Vector TransposeMatVec(const Vector& x) const;

  /// Matrix-matrix product `A B`.
  Matrix MatMul(const Matrix& other) const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Quadratic form `x' A x`. Requires square with matching dimension.
  double QuadraticForm(const Vector& x) const;

  /// Bilinear form `x' A y`.
  double BilinearForm(const Vector& x, const Vector& y) const;

  /// Trace (sum of diagonal). Requires square.
  double Trace() const;

  /// Diagonal as a vector. Requires square.
  Vector DiagonalVector() const;

  /// Extracts the square submatrix with rows/cols given by `indices`.
  Matrix Submatrix(const std::vector<size_t>& indices) const;

  /// Maximum absolute entry.
  double MaxAbs() const;

  /// True iff all entries are finite.
  bool AllFinite() const;

  /// True iff `|A - A'|_max <= tol`.
  bool IsSymmetric(double tol = 1e-12) const;

  /// Symmetrizes in place: `A = (A + A') / 2`. Requires square.
  void Symmetrize();

  /// Renders with `%.6g` entries, one row per line.
  std::string ToString() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// \name Out-of-place arithmetic.
/// @{
Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);
/// @}

/// \brief Maximum absolute componentwise difference; shapes must match.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace sisd::linalg

#endif  // SISD_LINALG_MATRIX_HPP_
