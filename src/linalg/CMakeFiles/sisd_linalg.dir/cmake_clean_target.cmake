file(REMOVE_RECURSE
  "libsisd_linalg.a"
)
