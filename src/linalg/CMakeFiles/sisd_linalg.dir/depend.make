# Empty dependencies file for sisd_linalg.
# This may be replaced when dependencies are built.
