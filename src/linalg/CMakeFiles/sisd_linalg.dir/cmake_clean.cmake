file(REMOVE_RECURSE
  "CMakeFiles/sisd_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/sisd_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/sisd_linalg.dir/eigen.cpp.o"
  "CMakeFiles/sisd_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/sisd_linalg.dir/matrix.cpp.o"
  "CMakeFiles/sisd_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/sisd_linalg.dir/vector.cpp.o"
  "CMakeFiles/sisd_linalg.dir/vector.cpp.o.d"
  "libsisd_linalg.a"
  "libsisd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
