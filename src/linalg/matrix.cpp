#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace sisd::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    SISD_CHECK(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix out(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) out(i, i) = diag[i];
  return out;
}

Matrix Matrix::OuterProduct(const Vector& u, const Vector& v) {
  Matrix out(u.size(), v.size());
  for (size_t r = 0; r < u.size(); ++r) {
    double* row = out.RowData(r);
    for (size_t c = 0; c < v.size(); ++c) row[c] = u[r] * v[c];
  }
  return out;
}

Vector Matrix::Row(size_t r) const {
  SISD_DCHECK(r < rows_);
  Vector out(cols_);
  const double* row = RowData(r);
  for (size_t c = 0; c < cols_; ++c) out[c] = row[c];
  return out;
}

Vector Matrix::Col(size_t c) const {
  SISD_DCHECK(c < cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  SISD_CHECK(v.size() == cols_);
  double* row = RowData(r);
  for (size_t c = 0; c < cols_; ++c) row[c] = v[c];
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SISD_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SISD_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scale) {
  for (double& v : data_) v *= scale;
  return *this;
}

Matrix& Matrix::AddScaled(const Matrix& other, double scale) {
  SISD_DCHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
  return *this;
}

Matrix& Matrix::AddOuter(const Vector& v, double scale) {
  SISD_DCHECK(IsSquare() && v.size() == rows_);
  for (size_t r = 0; r < rows_; ++r) {
    double* row = RowData(r);
    const double vr = scale * v[r];
    for (size_t c = 0; c < cols_; ++c) row[c] += vr * v[c];
  }
  return *this;
}

Vector Matrix::MatVec(const Vector& x) const {
  SISD_DCHECK(x.size() == cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowData(r);
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
  return out;
}

Vector Matrix::TransposeMatVec(const Vector& x) const {
  SISD_DCHECK(x.size() == rows_);
  Vector out(cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowData(r);
    const double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * xr;
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  SISD_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* arow = RowData(r);
    double* orow = out.RowData(r);
    for (size_t k = 0; k < cols_; ++k) {
      const double a = arow[k];
      if (a == 0.0) continue;
      const double* brow = other.RowData(k);
      for (size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowData(r);
    for (size_t c = 0; c < cols_; ++c) out(c, r) = row[c];
  }
  return out;
}

double Matrix::QuadraticForm(const Vector& x) const {
  SISD_DCHECK(IsSquare() && x.size() == rows_);
  double acc = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowData(r);
    double inner = 0.0;
    for (size_t c = 0; c < cols_; ++c) inner += row[c] * x[c];
    acc += x[r] * inner;
  }
  return acc;
}

double Matrix::BilinearForm(const Vector& x, const Vector& y) const {
  SISD_DCHECK(x.size() == rows_ && y.size() == cols_);
  double acc = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowData(r);
    double inner = 0.0;
    for (size_t c = 0; c < cols_; ++c) inner += row[c] * y[c];
    acc += x[r] * inner;
  }
  return acc;
}

double Matrix::Trace() const {
  SISD_DCHECK(IsSquare());
  double acc = 0.0;
  for (size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

Vector Matrix::DiagonalVector() const {
  SISD_DCHECK(IsSquare());
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, i);
  return out;
}

Matrix Matrix::Submatrix(const std::vector<size_t>& indices) const {
  SISD_CHECK(IsSquare());
  Matrix out(indices.size(), indices.size());
  for (size_t r = 0; r < indices.size(); ++r) {
    SISD_CHECK(indices[r] < rows_);
    for (size_t c = 0; c < indices.size(); ++c) {
      out(r, c) = (*this)(indices[r], indices[c]);
    }
  }
  return out;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool Matrix::IsSymmetric(double tol) const {
  if (!IsSquare()) return false;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

void Matrix::Symmetrize() {
  SISD_CHECK(IsSquare());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) {
      double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

std::string Matrix::ToString() const {
  std::string out;
  for (size_t r = 0; r < rows_; ++r) {
    out += "[";
    const double* row = RowData(r);
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += StrFormat("%.6g", row[c]);
    }
    out += "]\n";
  }
  return out;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double s) {
  a *= s;
  return a;
}

Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SISD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0.0;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      best = std::max(best, std::fabs(a(r, c) - b(r, c)));
    }
  }
  return best;
}

}  // namespace sisd::linalg
