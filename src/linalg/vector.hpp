/// \file vector.hpp
/// \brief Dense real vector with the small set of operations the background
/// model and the spread-direction optimizer need.
///
/// This is deliberately a minimal dense-linear-algebra kernel, not a general
/// BLAS: the paper's model works with dy-dimensional Gaussians where dy is at
/// most a few hundred (124 for the mammals dataset), so simple loops are both
/// sufficient and easy to verify.

#ifndef SISD_LINALG_VECTOR_HPP_
#define SISD_LINALG_VECTOR_HPP_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace sisd::linalg {

/// \brief Dense column vector of doubles.
class Vector {
 public:
  /// Creates an empty (0-dimensional) vector.
  Vector() = default;

  /// Creates a zero vector of dimension `n`.
  explicit Vector(size_t n) : data_(n, 0.0) {}

  /// Creates a vector of dimension `n` filled with `value`.
  Vector(size_t n, double value) : data_(n, value) {}

  /// Creates a vector from an initializer list, e.g. `Vector{1.0, 2.0}`.
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Creates a vector wrapping a copy of `values`.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  /// Dimension of the vector.
  size_t size() const { return data_.size(); }

  /// True iff dimension is zero.
  bool empty() const { return data_.empty(); }

  /// Element access with debug bounds checking.
  double& operator[](size_t i) {
    SISD_DCHECK(i < data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    SISD_DCHECK(i < data_.size());
    return data_[i];
  }

  /// Raw storage access (contiguous).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Underlying std::vector (read-only view).
  const std::vector<double>& values() const { return data_; }

  /// \name In-place arithmetic.
  /// @{
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scale);
  Vector& operator/=(double scale);
  /// Adds `scale * other` (axpy).
  Vector& AddScaled(const Vector& other, double scale);
  /// Overwrites with `a - b` (resized if needed; allocation-free once
  /// sized). Bit-identical to `a - b`.
  void AssignDifference(const Vector& a, const Vector& b);
  /// @}

  /// Euclidean inner product with `other`.
  double Dot(const Vector& other) const;

  /// Euclidean (L2) norm.
  double Norm() const;

  /// Squared Euclidean norm.
  double SquaredNorm() const;

  /// Largest absolute entry (0 for empty vectors).
  double MaxAbs() const;

  /// Sum of entries.
  double Sum() const;

  /// Returns a copy scaled to unit Euclidean norm.
  /// Requires a strictly positive norm.
  Vector Normalized() const;

  /// Sets all entries to `value`.
  void Fill(double value);

  /// True iff every entry is finite (no NaN/Inf).
  bool AllFinite() const;

  /// Renders as "[a, b, c]" with `%.6g` formatting.
  std::string ToString() const;

  bool operator==(const Vector& other) const { return data_ == other.data_; }

 private:
  std::vector<double> data_;
};

/// \name Out-of-place arithmetic.
/// @{
Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector a, double s);
Vector operator*(double s, Vector a);
Vector operator/(Vector a, double s);
/// @}

/// \brief Maximum absolute componentwise difference; vectors must match size.
double MaxAbsDiff(const Vector& a, const Vector& b);

}  // namespace sisd::linalg

#endif  // SISD_LINALG_VECTOR_HPP_
