/// \file strings.hpp
/// \brief Small string utilities used across the library (split, trim,
/// printf-style formatting into std::string, number parsing).

#ifndef SISD_COMMON_STRINGS_HPP_
#define SISD_COMMON_STRINGS_HPP_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sisd {

/// \brief Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// \brief Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

/// \brief Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// \brief printf-style formatting that returns a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Parses a double; rejects trailing junk. Empty/invalid -> nullopt.
std::optional<double> ParseDouble(std::string_view text);

/// \brief Parses a non-negative integer; rejects trailing junk.
std::optional<long long> ParseInt(std::string_view text);

/// \brief True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief Lowercases ASCII characters.
std::string ToLowerAscii(std::string_view text);

}  // namespace sisd

#endif  // SISD_COMMON_STRINGS_HPP_
