#include "common/status.hpp"

namespace sisd {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNumericalError:
      return "NumericalError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "InvalidCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOK() const {
  if (!ok()) {
    std::fprintf(stderr, "Status not OK: %s\n", ToString().c_str());
    std::abort();
  }
}

namespace internal {

void DieCheckFailed(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "SISD_CHECK failed at %s:%d: %s\n", file, line, msg);
  std::abort();
}

}  // namespace internal
}  // namespace sisd
