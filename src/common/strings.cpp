#include "common/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sisd {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return std::nullopt;
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return std::nullopt;
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<long long> ParseInt(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return std::nullopt;
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return std::nullopt;
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace sisd
