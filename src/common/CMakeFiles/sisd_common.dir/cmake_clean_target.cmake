file(REMOVE_RECURSE
  "libsisd_common.a"
)
