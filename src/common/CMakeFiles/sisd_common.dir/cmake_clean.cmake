file(REMOVE_RECURSE
  "CMakeFiles/sisd_common.dir/status.cpp.o"
  "CMakeFiles/sisd_common.dir/status.cpp.o.d"
  "CMakeFiles/sisd_common.dir/strings.cpp.o"
  "CMakeFiles/sisd_common.dir/strings.cpp.o.d"
  "libsisd_common.a"
  "libsisd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
