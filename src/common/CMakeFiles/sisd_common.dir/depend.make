# Empty dependencies file for sisd_common.
# This may be replaced when dependencies are built.
