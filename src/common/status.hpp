/// \file status.hpp
/// \brief Status / Result<T> error handling primitives.
///
/// The library does not throw exceptions (Google C++ style). Fallible
/// operations return either a `Status` (void-like operations) or a
/// `Result<T>` (operations producing a value), following the idiom used by
/// Apache Arrow (`arrow::Status` / `arrow::Result`) and RocksDB
/// (`rocksdb::Status`). Hot-path numeric code uses plain values plus
/// `SISD_DCHECK` assertions instead.

#ifndef SISD_COMMON_STATUS_HPP_
#define SISD_COMMON_STATUS_HPP_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace sisd {

/// \brief Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed something malformed
  kOutOfRange = 2,        ///< index or domain violation
  kNotFound = 3,          ///< named entity does not exist
  kAlreadyExists = 4,     ///< name collision on insert
  kIOError = 5,           ///< filesystem / parsing failure
  kNumericalError = 6,    ///< non-SPD matrix, divergence, NaN, ...
  kNotImplemented = 7,    ///< feature intentionally absent
  kUnknown = 8,           ///< anything else
  kConflict = 9,          ///< optimistic-concurrency check failed
  kUnavailable = 10,      ///< transient overload — retry later
};

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Cheap value-type carrying success or an error code + message.
///
/// An OK status carries no allocation. Statuses are immutable once built.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Named constructors, one per code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// @}

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message ("" for OK statuses).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message unless `ok()`.
  void CheckOK() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status. Arrow-style.
///
/// Typical use:
/// \code
///   Result<DataTable> table = CsvReader::ReadFile(path);
///   if (!table.ok()) return table.status();
///   Use(table.Value());
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit on purpose, mirroring Arrow).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Unknown("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// Returns the value; must only be called when `ok()`.
  const T& Value() const& {
    DieIfError();
    return *value_;
  }

  /// Returns the value; must only be called when `ok()`.
  T& Value() & {
    DieIfError();
    return *value_;
  }

  /// Moves the value out; must only be called when `ok()`.
  T&& MoveValue() && {
    DieIfError();
    return std::move(*value_);
  }

  /// Returns the value or aborts with the error message (Arrow idiom).
  const T& ValueOrDie() const& { return Value(); }

  /// Returns the contained value, or `fallback` if this is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::Value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

/// \brief Propagates a non-OK Status from expression `expr` to the caller.
#define SISD_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::sisd::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// \brief Assigns the value of a Result expression or returns its Status.
#define SISD_ASSIGN_OR_RETURN(lhs, rexpr)       \
  auto lhs##_result = (rexpr);                  \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto lhs = std::move(lhs##_result).MoveValue()

namespace internal {
/// Aborts the process printing `msg` with source location.
[[noreturn]] void DieCheckFailed(const char* file, int line, const char* msg);
}  // namespace internal

/// \brief Always-on invariant check; aborts on failure.
#define SISD_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::sisd::internal::DieCheckFailed(__FILE__, __LINE__, #cond);    \
    }                                                                 \
  } while (false)

/// \brief Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SISD_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define SISD_DCHECK(cond) SISD_CHECK(cond)
#endif

}  // namespace sisd

#endif  // SISD_COMMON_STATUS_HPP_
