/// \file snapshot.hpp
/// \brief JSON codecs for the library's value types — the building blocks
/// of the versioned session snapshot (core/session.hpp assembles them).
///
/// Every codec pair is a strict round trip: `Decode(Encode(x))` reproduces
/// `x` bit-identically (doubles included, via the json.hpp number format).
/// Decoders validate shape and return InvalidArgument with a field-level
/// message on malformed input; they never abort.

#ifndef SISD_SERIALIZE_SNAPSHOT_HPP_
#define SISD_SERIALIZE_SNAPSHOT_HPP_

#include <memory>

#include "common/status.hpp"
#include "data/table.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "model/assimilator.hpp"
#include "model/background_model.hpp"
#include "pattern/condition.hpp"
#include "pattern/extension.hpp"
#include "serialize/json.hpp"

namespace sisd::serialize {

/// \name Dense linear algebra.
/// @{
JsonValue EncodeVector(const linalg::Vector& v);
Result<linalg::Vector> DecodeVector(const JsonValue& json);
JsonValue EncodeMatrix(const linalg::Matrix& m);
Result<linalg::Matrix> DecodeMatrix(const JsonValue& json);
/// @}

/// \name Extensions (row bitsets), encoded as `{n, blocks}` with the packed
/// 64-bit blocks hex-encoded — exact and ~16x smaller than an index list.
/// @{
JsonValue EncodeExtension(const pattern::Extension& extension);
Result<pattern::Extension> DecodeExtension(const JsonValue& json);
/// @}

/// \name Conditions and intentions.
/// @{
JsonValue EncodeCondition(const pattern::Condition& condition);
Result<pattern::Condition> DecodeCondition(const JsonValue& json);
JsonValue EncodeIntention(const pattern::Intention& intention);
Result<pattern::Intention> DecodeIntention(const JsonValue& json);
/// @}

/// \name Data containers.
/// @{
JsonValue EncodeColumn(const data::Column& column);
Result<data::Column> DecodeColumn(const JsonValue& json);
JsonValue EncodeDataTable(const data::DataTable& table);
Result<data::DataTable> DecodeDataTable(const JsonValue& json);
JsonValue EncodeDataset(const data::Dataset& dataset);
Result<data::Dataset> DecodeDataset(const JsonValue& json);
/// @}

/// \name Background model + assimilator. The model codec saves each group's
/// cached Cholesky factor (when warm) so a restored model scores
/// bit-identically to the saved one even after incremental (rank-one)
/// factor updates have drifted the cache away from a fresh factorization's
/// low-order bits.
/// @{
JsonValue EncodeBackgroundModel(const model::BackgroundModel& m);
Result<model::BackgroundModel> DecodeBackgroundModel(const JsonValue& json);
JsonValue EncodeConstraint(const model::AssimilatedConstraint& constraint);
Result<model::AssimilatedConstraint> DecodeConstraint(const JsonValue& json);
JsonValue EncodeAssimilator(const model::PatternAssimilator& assimilator);
Result<model::PatternAssimilator> DecodeAssimilator(const JsonValue& json);
/// @}

}  // namespace sisd::serialize

#endif  // SISD_SERIALIZE_SNAPSHOT_HPP_
