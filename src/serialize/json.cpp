#include "serialize/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace sisd::serialize {

namespace {

/// Nesting guard: snapshots are shallow; anything deeper is hostile input.
constexpr int kMaxDepth = 256;

const char* TypeName(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return "bool";
    case JsonValue::Type::kInt:
      return "int";
    case JsonValue::Type::kDouble:
      return "double";
    case JsonValue::Type::kString:
      return "string";
    case JsonValue::Type::kArray:
      return "array";
    case JsonValue::Type::kObject:
      return "object";
  }
  return "?";
}

Status WrongType(const char* wanted, JsonValue::Type got) {
  return Status::InvalidArgument(StrFormat("expected JSON %s, found %s",
                                           wanted, TypeName(got)));
}

void EscapeStringTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(char(c));
        }
    }
  }
  out->push_back('"');
}

/// Recursive-descent parser over a char range.
class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue value;
    SISD_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (p_ != end_) {
      return Status::InvalidArgument(
          StrFormat("trailing content at offset %zu", Offset()));
    }
    return value;
  }

 private:
  size_t Offset() const { return size_t(p_ - start_anchor_); }

  void SkipWhitespace() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(
          StrFormat("expected '%c' at offset %zu", c, Offset()));
    }
    return Status::OK();
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (size_t(end_ - p_) >= len && std::memcmp(p_, literal, len) == 0) {
      p_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Status::InvalidArgument("JSON nesting too deep");
    }
    SkipWhitespace();
    if (p_ == end_) {
      return Status::InvalidArgument("unexpected end of JSON input");
    }
    switch (*p_) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SISD_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        break;
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        break;
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        break;
      default:
        return ParseNumber(out);
    }
    return Status::InvalidArgument(
        StrFormat("malformed JSON value at offset %zu", Offset()));
  }

  Status ParseObject(JsonValue* out, int depth) {
    SISD_RETURN_NOT_OK(Expect('{'));
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      SISD_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      SISD_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      SISD_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      SISD_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    SISD_RETURN_NOT_OK(Expect('['));
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      SISD_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      SISD_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseString(std::string* out) {
    SISD_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return Status::OK();
      }
      if (c < 0x20) {
        return Status::InvalidArgument(
            StrFormat("raw control character in string at offset %zu",
                      Offset()));
      }
      if (c != '\\') {
        out->push_back(char(c));
        ++p_;
        continue;
      }
      ++p_;  // consume backslash
      if (p_ == end_) break;
      const char esc = *p_++;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          SISD_RETURN_NOT_OK(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair.
            if (!(Consume('\\') && Consume('u'))) {
              return Status::InvalidArgument("unpaired UTF-16 surrogate");
            }
            unsigned low = 0;
            SISD_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Status::InvalidArgument("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Status::InvalidArgument("stray low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Status::InvalidArgument(
              StrFormat("bad escape '\\%c' at offset %zu", esc, Offset()));
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (end_ - p_ < 4) {
      return Status::InvalidArgument("truncated \\u escape");
    }
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = *p_++;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= unsigned(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= unsigned(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= unsigned(c - 'A' + 10);
      } else {
        return Status::InvalidArgument("bad hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(char(code));
    } else if (code < 0x800) {
      out->push_back(char(0xC0 | (code >> 6)));
      out->push_back(char(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(char(0xE0 | (code >> 12)));
      out->push_back(char(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(char(0x80 | (code & 0x3F)));
    } else {
      out->push_back(char(0xF0 | (code >> 18)));
      out->push_back(char(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(char(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(char(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    bool is_double = false;
    while (p_ != end_) {
      const char c = *p_;
      if (c >= '0' && c <= '9') {
        ++p_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++p_;
      } else {
        break;
      }
    }
    if (p_ == begin) {
      return Status::InvalidArgument(
          StrFormat("malformed JSON number at offset %zu", Offset()));
    }
    const std::string token(begin, p_);
    if (!is_double) {
      errno = 0;
      char* parse_end = nullptr;
      const long long v = std::strtoll(token.c_str(), &parse_end, 10);
      if (errno == 0 && parse_end == token.c_str() + token.size()) {
        *out = JsonValue::Int(v);
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    char* parse_end = nullptr;
    const double v = std::strtod(token.c_str(), &parse_end);
    if (parse_end != token.c_str() + token.size()) {
      return Status::InvalidArgument(
          StrFormat("malformed JSON number '%s'", token.c_str()));
    }
    *out = JsonValue::Double(v);
    return Status::OK();
  }

  const char* p_;
  const char* end_;
  const char* start_anchor_ = p_;
};

}  // namespace

Result<bool> JsonValue::GetBool() const {
  if (type_ != Type::kBool) return WrongType("bool", type_);
  return bool_;
}

Result<int64_t> JsonValue::GetInt() const {
  if (type_ != Type::kInt) return WrongType("int", type_);
  return int_;
}

Result<double> JsonValue::GetDouble() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return double(int_);
  if (type_ == Type::kString) {
    if (string_ == "Infinity") {
      return std::numeric_limits<double>::infinity();
    }
    if (string_ == "-Infinity") {
      return -std::numeric_limits<double>::infinity();
    }
    if (string_ == "NaN") return std::nan("");
  }
  return WrongType("double", type_);
}

Result<std::string> JsonValue::GetString() const {
  if (type_ != Type::kString) return WrongType("string", type_);
  return string_;
}

Result<size_t> JsonValue::GetSize() const {
  if (type_ != Type::kInt) return WrongType("int", type_);
  if (int_ < 0) {
    return Status::InvalidArgument("expected a non-negative integer");
  }
  return size_t(int_);
}

void JsonValue::Append(JsonValue element) {
  SISD_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(element));
}

void JsonValue::Set(std::string key, JsonValue value) {
  SISD_CHECK(type_ == Type::kObject);
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

Result<const JsonValue*> JsonValue::Get(const std::string& key) const {
  if (type_ != Type::kObject) return WrongType("object", type_);
  const JsonValue* found = Find(key);
  if (found == nullptr) {
    return Status::NotFound(StrFormat("missing JSON key '%s'", key.c_str()));
  }
  return found;
}

std::string FormatJsonDouble(double value) {
  if (std::isnan(value)) return "\"NaN\"";
  if (std::isinf(value)) return value > 0 ? "\"Infinity\"" : "\"-Infinity\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Force a double back on re-parse: without '.', 'e' or 'E' the token
  // would read back as an int (and "-0" would lose its sign bit).
  if (std::strcspn(buf, ".eE") == std::strlen(buf)) {
    std::strcat(buf, ".0");
  }
  return buf;
}

void JsonValue::WriteTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_indent = [&](int level) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(size_t(indent) * size_t(level), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      out->append(buf);
      break;
    }
    case Type::kDouble:
      out->append(FormatJsonDouble(double_));
      break;
    case Type::kString:
      EscapeStringTo(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(depth + 1);
        array_[i].WriteTo(out, indent, depth + 1);
      }
      newline_indent(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_indent(depth + 1);
        EscapeStringTo(members_[i].first, out);
        out->push_back(':');
        if (pretty) out->push_back(' ');
        members_[i].second.WriteTo(out, indent, depth + 1);
      }
      newline_indent(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Write(int indent) const {
  std::string out;
  WriteTo(&out, indent, 0);
  return out;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out.write(text.data(), std::streamsize(text.size()));
  out.flush();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed: " + path);
  }
  return buffer.str();
}

}  // namespace sisd::serialize
