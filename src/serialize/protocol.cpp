#include "serialize/protocol.hpp"

namespace sisd::serialize {

JsonValue EncodeRequest(const ProtocolRequest& request) {
  JsonValue out = JsonValue::Object();
  if (request.has_id) out.Set("id", JsonValue::Int(request.id));
  out.Set("verb", JsonValue::Str(request.verb));
  if (!request.session.empty()) {
    out.Set("session", JsonValue::Str(request.session));
  }
  if (request.params.is_object()) {
    for (const auto& [key, value] : request.params.members()) {
      out.Set(key, value);
    }
  }
  return out;
}

Result<ProtocolRequest> DecodeRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  ProtocolRequest request;
  for (const auto& [key, value] : json.members()) {
    if (key == "id") {
      SISD_ASSIGN_OR_RETURN(id, value.GetInt());
      request.id = id;
      request.has_id = true;
    } else if (key == "verb") {
      SISD_ASSIGN_OR_RETURN(verb, value.GetString());
      request.verb = verb;
    } else if (key == "session") {
      SISD_ASSIGN_OR_RETURN(session, value.GetString());
      request.session = session;
    } else {
      request.params.Set(key, value);
    }
  }
  if (request.verb.empty()) {
    return Status::InvalidArgument("request is missing the 'verb' key");
  }
  return request;
}

Result<ProtocolRequest> ParseRequestLine(const std::string& line) {
  SISD_ASSIGN_OR_RETURN(json, JsonValue::Parse(line));
  return DecodeRequest(json);
}

JsonValue EncodeResponse(const ProtocolResponse& response) {
  JsonValue out = JsonValue::Object();
  if (response.has_id) out.Set("id", JsonValue::Int(response.id));
  if (!response.verb.empty()) out.Set("verb", JsonValue::Str(response.verb));
  if (!response.session.empty()) {
    out.Set("session", JsonValue::Str(response.session));
  }
  out.Set("ok", JsonValue::Bool(response.ok));
  if (response.ok) {
    out.Set("result", response.result);
  } else {
    JsonValue error = JsonValue::Object();
    error.Set("code",
              JsonValue::Str(StatusCodeToString(response.error.code())));
    error.Set("message", JsonValue::Str(response.error.message()));
    out.Set("error", std::move(error));
  }
  return out;
}

Result<ProtocolResponse> DecodeResponse(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  ProtocolResponse response;
  if (const JsonValue* id = json.Find("id")) {
    SISD_ASSIGN_OR_RETURN(value, id->GetInt());
    response.id = value;
    response.has_id = true;
  }
  if (const JsonValue* verb = json.Find("verb")) {
    SISD_ASSIGN_OR_RETURN(value, verb->GetString());
    response.verb = value;
  }
  if (const JsonValue* session = json.Find("session")) {
    SISD_ASSIGN_OR_RETURN(value, session->GetString());
    response.session = value;
  }
  SISD_ASSIGN_OR_RETURN(ok_json, json.Get("ok"));
  SISD_ASSIGN_OR_RETURN(ok, ok_json->GetBool());
  response.ok = ok;
  if (ok) {
    SISD_ASSIGN_OR_RETURN(result, json.Get("result"));
    if (!result->is_object()) {
      return Status::InvalidArgument("response 'result' must be an object");
    }
    response.result = *result;
  } else {
    SISD_ASSIGN_OR_RETURN(error, json.Get("error"));
    SISD_ASSIGN_OR_RETURN(code_json, error->Get("code"));
    SISD_ASSIGN_OR_RETURN(code, code_json->GetString());
    SISD_ASSIGN_OR_RETURN(message_json, error->Get("message"));
    SISD_ASSIGN_OR_RETURN(message, message_json->GetString());
    response.error = Status(StatusCodeFromString(code), message);
    if (response.error.ok()) {
      return Status::InvalidArgument(
          "error response must not carry code 'OK'");
    }
  }
  return response;
}

std::string WriteResponseLine(const ProtocolResponse& response) {
  return EncodeResponse(response).Write() + "\n";
}

Result<ProtocolResponse> ParseResponseLine(const std::string& line) {
  SISD_ASSIGN_OR_RETURN(json, JsonValue::Parse(line));
  return DecodeResponse(json);
}

ProtocolResponse MakeOkResponse(const ProtocolRequest& request,
                                JsonValue result) {
  ProtocolResponse response;
  response.id = request.id;
  response.has_id = request.has_id;
  response.verb = request.verb;
  response.session = request.session;
  response.ok = true;
  response.result = std::move(result);
  return response;
}

ProtocolResponse MakeErrorResponse(const ProtocolRequest& request,
                                   Status error) {
  SISD_DCHECK(!error.ok());
  ProtocolResponse response;
  response.id = request.id;
  response.has_id = request.has_id;
  response.verb = request.verb;
  response.session = request.session;
  response.ok = false;
  response.error = std::move(error);
  return response;
}

StatusCode StatusCodeFromString(const std::string& name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,   StatusCode::kNotFound,
      StatusCode::kAlreadyExists, StatusCode::kIOError,
      StatusCode::kNumericalError, StatusCode::kNotImplemented,
      StatusCode::kUnknown,      StatusCode::kConflict,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeToString(code)) return code;
  }
  return StatusCode::kUnknown;
}

}  // namespace sisd::serialize
