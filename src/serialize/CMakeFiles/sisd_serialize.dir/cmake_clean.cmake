file(REMOVE_RECURSE
  "CMakeFiles/sisd_serialize.dir/json.cpp.o"
  "CMakeFiles/sisd_serialize.dir/json.cpp.o.d"
  "CMakeFiles/sisd_serialize.dir/protocol.cpp.o"
  "CMakeFiles/sisd_serialize.dir/protocol.cpp.o.d"
  "CMakeFiles/sisd_serialize.dir/snapshot.cpp.o"
  "CMakeFiles/sisd_serialize.dir/snapshot.cpp.o.d"
  "libsisd_serialize.a"
  "libsisd_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
