file(REMOVE_RECURSE
  "libsisd_serialize.a"
)
