# Empty dependencies file for sisd_serialize.
# This may be replaced when dependencies are built.
