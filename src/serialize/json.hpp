/// \file json.hpp
/// \brief Minimal dependency-free JSON document model, writer and parser —
/// the wire format of the session snapshot subsystem.
///
/// Design points that matter for snapshots:
///  - Objects preserve insertion order, so the writer is deterministic and
///    snapshot bytes are reproducible.
///  - Integers (int64) and doubles are distinct types. Doubles are written
///    with 17 significant digits (and a forced ".0" suffix when they would
///    otherwise read back as integers), which round-trips every finite IEEE
///    binary64 value bit-exactly — the property the "restore is
///    bit-identical" guarantee rests on. Non-finite doubles are written as
///    the JSON strings "Infinity" / "-Infinity" / "NaN" (the document stays
///    standard JSON); `GetDouble` accepts those strings back.
///  - No exceptions: the parser and all typed accessors return
///    Status/Result like the rest of the library.

#ifndef SISD_SERIALIZE_JSON_HPP_
#define SISD_SERIALIZE_JSON_HPP_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace sisd::serialize {

/// \brief One JSON value: null, bool, integer, double, string, array or
/// (insertion-ordered) object.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// Null by default.
  JsonValue() = default;

  /// \name Factories, one per type.
  /// @{
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v) {
    JsonValue out;
    out.type_ = Type::kBool;
    out.bool_ = v;
    return out;
  }
  static JsonValue Int(int64_t v) {
    JsonValue out;
    out.type_ = Type::kInt;
    out.int_ = v;
    return out;
  }
  static JsonValue Double(double v) {
    JsonValue out;
    out.type_ = Type::kDouble;
    out.double_ = v;
    return out;
  }
  static JsonValue Str(std::string v) {
    JsonValue out;
    out.type_ = Type::kString;
    out.string_ = std::move(v);
    return out;
  }
  static JsonValue Array() {
    JsonValue out;
    out.type_ = Type::kArray;
    return out;
  }
  static JsonValue Object() {
    JsonValue out;
    out.type_ = Type::kObject;
    return out;
  }
  /// @}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// \name Typed accessors (Result-returning; wrong type = InvalidArgument).
  /// @{
  Result<bool> GetBool() const;
  Result<int64_t> GetInt() const;
  /// Accepts kDouble, kInt (exact conversion), and the non-finite string
  /// encodings "Infinity" / "-Infinity" / "NaN".
  Result<double> GetDouble() const;
  Result<std::string> GetString() const;
  /// `GetInt` restricted to non-negative values, converted to size_t.
  Result<size_t> GetSize() const;
  /// @}

  /// \name Array interface.
  /// @{
  /// Appends an element (value must be an array).
  void Append(JsonValue element);
  /// Number of elements (arrays) or members (objects); 0 otherwise.
  size_t size() const {
    return type_ == Type::kArray ? array_.size() : members_.size();
  }
  /// The elements (must be an array).
  const std::vector<JsonValue>& items() const {
    SISD_DCHECK(type_ == Type::kArray);
    return array_;
  }
  /// @}

  /// \name Object interface (insertion-ordered; duplicate keys overwrite).
  /// @{
  /// Sets a member (value must be an object).
  void Set(std::string key, JsonValue value);
  /// The member's value, or nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  /// The member's value; NotFound when absent.
  Result<const JsonValue*> Get(const std::string& key) const;
  /// All members in insertion order (must be an object).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    SISD_DCHECK(type_ == Type::kObject);
    return members_;
  }
  /// @}

  /// Serializes the value. `indent < 0` = compact single line; otherwise
  /// pretty-printed with `indent` spaces per nesting level. Deterministic:
  /// same value, same bytes.
  std::string Write(int indent = -1) const;

  /// Parses a complete JSON document (trailing non-whitespace = error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void WriteTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// \brief Formats one double exactly as the writer does (exposed for tests:
/// the bit-exact round-trip contract lives here).
std::string FormatJsonDouble(double value);

/// \brief Writes `text` to `path` atomically-ish (truncate + write + close),
/// returning IOError on failure.
Status WriteTextFile(const std::string& path, const std::string& text);

/// \brief Reads a whole file into a string; IOError when unreadable.
Result<std::string> ReadTextFile(const std::string& path);

}  // namespace sisd::serialize

#endif  // SISD_SERIALIZE_JSON_HPP_
