#include "serialize/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "common/strings.hpp"
#include "linalg/cholesky.hpp"

namespace sisd::serialize {

namespace {

Result<double> GetDoubleField(const JsonValue& json, const char* key) {
  SISD_ASSIGN_OR_RETURN(field, json.Get(key));
  return field->GetDouble();
}

Result<size_t> GetSizeField(const JsonValue& json, const char* key) {
  SISD_ASSIGN_OR_RETURN(field, json.Get(key));
  return field->GetSize();
}

Result<std::string> GetStringField(const JsonValue& json, const char* key) {
  SISD_ASSIGN_OR_RETURN(field, json.Get(key));
  return field->GetString();
}

}  // namespace

JsonValue EncodeVector(const linalg::Vector& v) {
  JsonValue out = JsonValue::Array();
  for (size_t i = 0; i < v.size(); ++i) out.Append(JsonValue::Double(v[i]));
  return out;
}

Result<linalg::Vector> DecodeVector(const JsonValue& json) {
  if (!json.is_array()) {
    return Status::InvalidArgument("vector must be a JSON array");
  }
  linalg::Vector out(json.size());
  for (size_t i = 0; i < json.size(); ++i) {
    SISD_ASSIGN_OR_RETURN(entry, json.items()[i].GetDouble());
    out[i] = entry;
  }
  return out;
}

JsonValue EncodeMatrix(const linalg::Matrix& m) {
  JsonValue out = JsonValue::Object();
  out.Set("rows", JsonValue::Int(int64_t(m.rows())));
  out.Set("cols", JsonValue::Int(int64_t(m.cols())));
  JsonValue data = JsonValue::Array();
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowData(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      data.Append(JsonValue::Double(row[c]));
    }
  }
  out.Set("data", std::move(data));
  return out;
}

Result<linalg::Matrix> DecodeMatrix(const JsonValue& json) {
  SISD_ASSIGN_OR_RETURN(rows, GetSizeField(json, "rows"));
  SISD_ASSIGN_OR_RETURN(cols, GetSizeField(json, "cols"));
  SISD_ASSIGN_OR_RETURN(data, json.Get("data"));
  // Guard the shape check against size_t overflow in `rows * cols`
  // (hostile shapes like 2^32 x 2^32 must fail cleanly, not wrap to 0 and
  // read out of bounds), and only allocate after the element count is
  // known to match the actual array length.
  if (!data->is_array() ||
      (rows != 0 && (data->size() / rows != cols ||
                     data->size() % rows != 0)) ||
      (rows == 0 && data->size() != 0)) {
    return Status::InvalidArgument("matrix data length disagrees with shape");
  }
  linalg::Matrix out(rows, cols);
  size_t k = 0;
  for (size_t r = 0; r < rows; ++r) {
    double* row = out.RowData(r);
    for (size_t c = 0; c < cols; ++c, ++k) {
      SISD_ASSIGN_OR_RETURN(entry, data->items()[k].GetDouble());
      row[c] = entry;
    }
  }
  return out;
}

JsonValue EncodeExtension(const pattern::Extension& extension) {
  JsonValue out = JsonValue::Object();
  out.Set("n", JsonValue::Int(int64_t(extension.universe_size())));
  std::string hex;
  hex.reserve(extension.blocks().size() * 16);
  char buf[17];
  for (uint64_t block : extension.blocks()) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(block));
    hex.append(buf, 16);
  }
  out.Set("blocks", JsonValue::Str(std::move(hex)));
  return out;
}

Result<pattern::Extension> DecodeExtension(const JsonValue& json) {
  SISD_ASSIGN_OR_RETURN(n, GetSizeField(json, "n"));
  SISD_ASSIGN_OR_RETURN(hex, GetStringField(json, "blocks"));
  // Validate before allocating: a hostile `n` must fail on the length
  // check (the hex string bounds the real size), not abort in a huge
  // bitset allocation.
  const size_t expected_blocks = (n + 63) / 64;
  if (n > hex.size() * 4 || hex.size() != expected_blocks * 16) {
    return Status::InvalidArgument(
        StrFormat("extension block string has %zu hex chars, expected %zu",
                  hex.size(), expected_blocks * 16));
  }
  pattern::Extension out(n);
  for (size_t b = 0; b < expected_blocks; ++b) {
    uint64_t block = 0;
    for (size_t k = 0; k < 16; ++k) {
      const char c = hex[b * 16 + k];
      uint64_t nibble;
      if (c >= '0' && c <= '9') {
        nibble = uint64_t(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = uint64_t(c - 'a' + 10);
      } else {
        return Status::InvalidArgument("bad hex digit in extension blocks");
      }
      block = (block << 4) | nibble;
    }
    while (block != 0) {
      const int bit = std::countr_zero(block);
      const size_t row = (b << 6) + size_t(bit);
      if (row >= n) {
        return Status::InvalidArgument(
            "extension has a set bit beyond its universe");
      }
      out.Insert(row);
      block &= block - 1;
    }
  }
  return out;
}

namespace {

const char* ConditionOpName(pattern::ConditionOp op) {
  switch (op) {
    case pattern::ConditionOp::kLessEqual:
      return "le";
    case pattern::ConditionOp::kGreaterEqual:
      return "ge";
    case pattern::ConditionOp::kEquals:
      return "eq";
    case pattern::ConditionOp::kNotEquals:
      return "ne";
  }
  return "?";
}

Result<pattern::ConditionOp> ConditionOpFromName(const std::string& name) {
  if (name == "le") return pattern::ConditionOp::kLessEqual;
  if (name == "ge") return pattern::ConditionOp::kGreaterEqual;
  if (name == "eq") return pattern::ConditionOp::kEquals;
  if (name == "ne") return pattern::ConditionOp::kNotEquals;
  return Status::InvalidArgument("unknown condition op '" + name + "'");
}

}  // namespace

JsonValue EncodeCondition(const pattern::Condition& condition) {
  JsonValue out = JsonValue::Object();
  out.Set("attribute", JsonValue::Int(int64_t(condition.attribute)));
  out.Set("op", JsonValue::Str(ConditionOpName(condition.op)));
  out.Set("threshold", JsonValue::Double(condition.threshold));
  out.Set("level", JsonValue::Int(condition.level));
  return out;
}

Result<pattern::Condition> DecodeCondition(const JsonValue& json) {
  pattern::Condition out;
  SISD_ASSIGN_OR_RETURN(attribute, GetSizeField(json, "attribute"));
  out.attribute = attribute;
  SISD_ASSIGN_OR_RETURN(op_name, GetStringField(json, "op"));
  SISD_ASSIGN_OR_RETURN(op, ConditionOpFromName(op_name));
  out.op = op;
  SISD_ASSIGN_OR_RETURN(threshold, GetDoubleField(json, "threshold"));
  out.threshold = threshold;
  SISD_ASSIGN_OR_RETURN(level_field, json.Get("level"));
  SISD_ASSIGN_OR_RETURN(level, level_field->GetInt());
  out.level = int32_t(level);
  return out;
}

JsonValue EncodeIntention(const pattern::Intention& intention) {
  JsonValue out = JsonValue::Array();
  for (const pattern::Condition& c : intention.conditions()) {
    out.Append(EncodeCondition(c));
  }
  return out;
}

Result<pattern::Intention> DecodeIntention(const JsonValue& json) {
  if (!json.is_array()) {
    return Status::InvalidArgument("intention must be a JSON array");
  }
  std::vector<pattern::Condition> conditions;
  conditions.reserve(json.size());
  for (const JsonValue& entry : json.items()) {
    SISD_ASSIGN_OR_RETURN(condition, DecodeCondition(entry));
    conditions.push_back(condition);
  }
  return pattern::Intention(std::move(conditions));
}

JsonValue EncodeColumn(const data::Column& column) {
  JsonValue out = JsonValue::Object();
  out.Set("name", JsonValue::Str(column.name()));
  switch (column.kind()) {
    case data::AttributeKind::kNumeric:
      out.Set("kind", JsonValue::Str("numeric"));
      break;
    case data::AttributeKind::kOrdinal:
      out.Set("kind", JsonValue::Str("ordinal"));
      break;
    case data::AttributeKind::kCategorical:
      out.Set("kind", JsonValue::Str("categorical"));
      break;
    case data::AttributeKind::kBinary:
      out.Set("kind", JsonValue::Str("binary"));
      break;
  }
  if (data::IsOrderable(column.kind())) {
    JsonValue values = JsonValue::Array();
    for (double v : column.numeric_values()) {
      values.Append(JsonValue::Double(v));
    }
    out.Set("values", std::move(values));
  } else {
    JsonValue codes = JsonValue::Array();
    for (int32_t code : column.codes()) codes.Append(JsonValue::Int(code));
    out.Set("codes", std::move(codes));
    JsonValue labels = JsonValue::Array();
    for (const std::string& label : column.labels()) {
      labels.Append(JsonValue::Str(label));
    }
    out.Set("labels", std::move(labels));
  }
  return out;
}

Result<data::Column> DecodeColumn(const JsonValue& json) {
  SISD_ASSIGN_OR_RETURN(name, GetStringField(json, "name"));
  SISD_ASSIGN_OR_RETURN(kind, GetStringField(json, "kind"));
  if (kind == "numeric" || kind == "ordinal") {
    SISD_ASSIGN_OR_RETURN(values_json, json.Get("values"));
    SISD_ASSIGN_OR_RETURN(values, DecodeVector(*values_json));
    std::vector<double> raw(values.values());
    return kind == "numeric"
               ? data::Column::Numeric(std::move(name), std::move(raw))
               : data::Column::Ordinal(std::move(name), std::move(raw));
  }
  if (kind != "categorical" && kind != "binary") {
    return Status::InvalidArgument("unknown column kind '" + kind + "'");
  }
  SISD_ASSIGN_OR_RETURN(codes_json, json.Get("codes"));
  if (!codes_json->is_array()) {
    return Status::InvalidArgument("column codes must be an array");
  }
  std::vector<int32_t> codes;
  codes.reserve(codes_json->size());
  for (const JsonValue& entry : codes_json->items()) {
    SISD_ASSIGN_OR_RETURN(code, entry.GetInt());
    codes.push_back(int32_t(code));
  }
  SISD_ASSIGN_OR_RETURN(labels_json, json.Get("labels"));
  if (!labels_json->is_array()) {
    return Status::InvalidArgument("column labels must be an array");
  }
  std::vector<std::string> labels;
  labels.reserve(labels_json->size());
  for (const JsonValue& entry : labels_json->items()) {
    SISD_ASSIGN_OR_RETURN(label, entry.GetString());
    labels.push_back(std::move(label));
  }
  for (int32_t code : codes) {
    if (code < 0 || size_t(code) >= labels.size()) {
      return Status::InvalidArgument(
          StrFormat("column '%s' has code %d outside its label table",
                    name.c_str(), code));
    }
  }
  if (kind == "binary") {
    if (labels.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("binary column '%s' needs exactly 2 labels, has %zu",
                    name.c_str(), labels.size()));
    }
    std::vector<bool> bools(codes.size());
    for (size_t i = 0; i < codes.size(); ++i) bools[i] = codes[i] != 0;
    return data::Column::Binary(std::move(name), bools, std::move(labels[0]),
                                std::move(labels[1]));
  }
  return data::Column::Categorical(std::move(name), std::move(codes),
                                   std::move(labels));
}

JsonValue EncodeDataTable(const data::DataTable& table) {
  JsonValue out = JsonValue::Object();
  JsonValue columns = JsonValue::Array();
  for (size_t j = 0; j < table.num_columns(); ++j) {
    columns.Append(EncodeColumn(table.column(j)));
  }
  out.Set("columns", std::move(columns));
  return out;
}

Result<data::DataTable> DecodeDataTable(const JsonValue& json) {
  SISD_ASSIGN_OR_RETURN(columns, json.Get("columns"));
  if (!columns->is_array()) {
    return Status::InvalidArgument("table columns must be an array");
  }
  data::DataTable out;
  for (const JsonValue& entry : columns->items()) {
    SISD_ASSIGN_OR_RETURN(column, DecodeColumn(entry));
    SISD_RETURN_NOT_OK(out.AddColumn(std::move(column)));
  }
  return out;
}

JsonValue EncodeDataset(const data::Dataset& dataset) {
  JsonValue out = JsonValue::Object();
  out.Set("name", JsonValue::Str(dataset.name));
  JsonValue target_names = JsonValue::Array();
  for (const std::string& name : dataset.target_names) {
    target_names.Append(JsonValue::Str(name));
  }
  out.Set("target_names", std::move(target_names));
  out.Set("targets", EncodeMatrix(dataset.targets));
  out.Set("descriptions", EncodeDataTable(dataset.descriptions));
  return out;
}

Result<data::Dataset> DecodeDataset(const JsonValue& json) {
  data::Dataset out;
  SISD_ASSIGN_OR_RETURN(name, GetStringField(json, "name"));
  out.name = std::move(name);
  SISD_ASSIGN_OR_RETURN(target_names, json.Get("target_names"));
  if (!target_names->is_array()) {
    return Status::InvalidArgument("target_names must be an array");
  }
  for (const JsonValue& entry : target_names->items()) {
    SISD_ASSIGN_OR_RETURN(target_name, entry.GetString());
    out.target_names.push_back(std::move(target_name));
  }
  SISD_ASSIGN_OR_RETURN(targets_json, json.Get("targets"));
  SISD_ASSIGN_OR_RETURN(targets, DecodeMatrix(*targets_json));
  out.targets = std::move(targets);
  SISD_ASSIGN_OR_RETURN(descriptions_json, json.Get("descriptions"));
  SISD_ASSIGN_OR_RETURN(descriptions, DecodeDataTable(*descriptions_json));
  out.descriptions = std::move(descriptions);
  SISD_RETURN_NOT_OK(out.Validate());
  return out;
}

JsonValue EncodeBackgroundModel(const model::BackgroundModel& m) {
  JsonValue out = JsonValue::Object();
  out.Set("num_rows", JsonValue::Int(int64_t(m.num_rows())));
  out.Set("dim", JsonValue::Int(int64_t(m.dim())));
  JsonValue groups = JsonValue::Array();
  for (size_t g = 0; g < m.num_groups(); ++g) {
    const model::ParameterGroup& group = m.group(g);
    JsonValue entry = JsonValue::Object();
    entry.Set("mu", EncodeVector(group.mu));
    entry.Set("sigma", EncodeMatrix(group.sigma));
    entry.Set("rows", EncodeExtension(group.rows));
    const std::shared_ptr<const linalg::Cholesky> factor =
        m.CachedGroupFactor(g);
    entry.Set("factor",
              factor ? EncodeMatrix(factor->L()) : JsonValue::Null());
    groups.Append(std::move(entry));
  }
  out.Set("groups", std::move(groups));
  return out;
}

Result<model::BackgroundModel> DecodeBackgroundModel(const JsonValue& json) {
  SISD_ASSIGN_OR_RETURN(num_rows, GetSizeField(json, "num_rows"));
  SISD_ASSIGN_OR_RETURN(dim, GetSizeField(json, "dim"));
  SISD_ASSIGN_OR_RETURN(groups_json, json.Get("groups"));
  if (!groups_json->is_array()) {
    return Status::InvalidArgument("model groups must be an array");
  }
  std::vector<model::ParameterGroup> groups;
  std::vector<std::shared_ptr<const linalg::Cholesky>> factors;
  groups.reserve(groups_json->size());
  factors.reserve(groups_json->size());
  for (const JsonValue& entry : groups_json->items()) {
    model::ParameterGroup group;
    SISD_ASSIGN_OR_RETURN(mu_json, entry.Get("mu"));
    SISD_ASSIGN_OR_RETURN(mu, DecodeVector(*mu_json));
    group.mu = std::move(mu);
    SISD_ASSIGN_OR_RETURN(sigma_json, entry.Get("sigma"));
    SISD_ASSIGN_OR_RETURN(sigma, DecodeMatrix(*sigma_json));
    group.sigma = std::move(sigma);
    SISD_ASSIGN_OR_RETURN(rows_json, entry.Get("rows"));
    SISD_ASSIGN_OR_RETURN(rows, DecodeExtension(*rows_json));
    group.rows = std::move(rows);
    SISD_ASSIGN_OR_RETURN(factor_json, entry.Get("factor"));
    if (factor_json->is_null()) {
      factors.push_back(nullptr);
    } else {
      SISD_ASSIGN_OR_RETURN(factor_l, DecodeMatrix(*factor_json));
      SISD_ASSIGN_OR_RETURN(factor,
                            linalg::Cholesky::FromFactor(std::move(factor_l)));
      factors.push_back(
          std::make_shared<const linalg::Cholesky>(std::move(factor)));
    }
    groups.push_back(std::move(group));
  }
  return model::BackgroundModel::RestoreFromParts(
      num_rows, dim, std::move(groups), std::move(factors));
}

JsonValue EncodeConstraint(const model::AssimilatedConstraint& constraint) {
  JsonValue out = JsonValue::Object();
  const bool is_location =
      constraint.kind == model::AssimilatedConstraint::Kind::kLocation;
  out.Set("kind", JsonValue::Str(is_location ? "location" : "spread"));
  out.Set("extension", EncodeExtension(constraint.extension));
  out.Set("mean", EncodeVector(constraint.mean));
  out.Set("direction", is_location ? JsonValue::Null()
                                   : EncodeVector(constraint.direction));
  out.Set("variance", JsonValue::Double(constraint.variance));
  return out;
}

Result<model::AssimilatedConstraint> DecodeConstraint(const JsonValue& json) {
  model::AssimilatedConstraint out;
  SISD_ASSIGN_OR_RETURN(kind, GetStringField(json, "kind"));
  if (kind == "location") {
    out.kind = model::AssimilatedConstraint::Kind::kLocation;
  } else if (kind == "spread") {
    out.kind = model::AssimilatedConstraint::Kind::kSpread;
  } else {
    return Status::InvalidArgument("unknown constraint kind '" + kind + "'");
  }
  SISD_ASSIGN_OR_RETURN(extension_json, json.Get("extension"));
  SISD_ASSIGN_OR_RETURN(extension, DecodeExtension(*extension_json));
  out.extension = std::move(extension);
  SISD_ASSIGN_OR_RETURN(mean_json, json.Get("mean"));
  SISD_ASSIGN_OR_RETURN(mean, DecodeVector(*mean_json));
  out.mean = std::move(mean);
  SISD_ASSIGN_OR_RETURN(direction_json, json.Get("direction"));
  if (!direction_json->is_null()) {
    SISD_ASSIGN_OR_RETURN(direction, DecodeVector(*direction_json));
    out.direction = std::move(direction);
  }
  SISD_ASSIGN_OR_RETURN(variance, GetDoubleField(json, "variance"));
  out.variance = variance;
  return out;
}

JsonValue EncodeAssimilator(const model::PatternAssimilator& assimilator) {
  JsonValue out = JsonValue::Object();
  out.Set("initial_model",
          EncodeBackgroundModel(assimilator.initial_model()));
  out.Set("model", EncodeBackgroundModel(assimilator.model()));
  JsonValue constraints = JsonValue::Array();
  for (const model::AssimilatedConstraint& c : assimilator.constraints()) {
    constraints.Append(EncodeConstraint(c));
  }
  out.Set("constraints", std::move(constraints));
  return out;
}

Result<model::PatternAssimilator> DecodeAssimilator(const JsonValue& json) {
  SISD_ASSIGN_OR_RETURN(initial_json, json.Get("initial_model"));
  SISD_ASSIGN_OR_RETURN(initial_model, DecodeBackgroundModel(*initial_json));
  SISD_ASSIGN_OR_RETURN(model_json, json.Get("model"));
  SISD_ASSIGN_OR_RETURN(current_model, DecodeBackgroundModel(*model_json));
  SISD_ASSIGN_OR_RETURN(constraints_json, json.Get("constraints"));
  if (!constraints_json->is_array()) {
    return Status::InvalidArgument("constraints must be an array");
  }
  std::vector<model::AssimilatedConstraint> constraints;
  constraints.reserve(constraints_json->size());
  for (const JsonValue& entry : constraints_json->items()) {
    SISD_ASSIGN_OR_RETURN(constraint, DecodeConstraint(entry));
    constraints.push_back(std::move(constraint));
  }
  return model::PatternAssimilator::Restore(std::move(initial_model),
                                            std::move(current_model),
                                            std::move(constraints));
}

}  // namespace sisd::serialize
