/// \file protocol.hpp
/// \brief Wire types and codecs for the sisd_serve line-delimited JSON
/// protocol (docs/PROTOCOL.md is the schema reference).
///
/// One request per line, one response per line. A request is a flat JSON
/// object carrying three reserved keys — `id` (optional client-chosen
/// correlation integer), `verb` (required), `session` (the session name,
/// required by every verb except `stats` and the catalog verbs
/// `dataset_load`/`dataset_list`/`dataset_drop`) — plus verb-specific
/// parameters, which the codec collects into `params` without
/// interpreting them.
/// A response echoes `id`/`verb`/`session` and carries either
/// `"ok": true` with a `result` object or `"ok": false` with an
/// `error: {code, message}` object (codes are `StatusCodeToString` names).
///
/// Codecs follow the snapshot conventions: deterministic bytes (object
/// members in fixed order), Result-based validation, no exceptions.

#ifndef SISD_SERIALIZE_PROTOCOL_HPP_
#define SISD_SERIALIZE_PROTOCOL_HPP_

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "serialize/json.hpp"

namespace sisd::serialize {

/// \brief One decoded protocol request.
struct ProtocolRequest {
  /// Client correlation id; echoed verbatim when present.
  int64_t id = 0;
  bool has_id = false;
  /// The operation: open | mine | assimilate | history | export | save |
  /// evict | close | stats | dataset_load | dataset_list | dataset_drop.
  std::string verb;
  /// Target session name ("" when absent, e.g. for `stats`).
  std::string session;
  /// Verb-specific parameters: every request member other than the
  /// reserved `id`/`verb`/`session` keys, in request order.
  JsonValue params = JsonValue::Object();
};

/// \brief One protocol response (success payload or error).
struct ProtocolResponse {
  int64_t id = 0;
  bool has_id = false;
  std::string verb;
  std::string session;
  bool ok = false;
  /// Success payload (`result` on the wire); ignored when !ok.
  JsonValue result = JsonValue::Object();
  /// Failure cause; must be non-OK when !ok.
  Status error;
};

/// \name Request codec.
/// @{
JsonValue EncodeRequest(const ProtocolRequest& request);
Result<ProtocolRequest> DecodeRequest(const JsonValue& json);
/// Parses one request line (must be a JSON object).
Result<ProtocolRequest> ParseRequestLine(const std::string& line);
/// @}

/// \name Response codec.
/// @{
JsonValue EncodeResponse(const ProtocolResponse& response);
Result<ProtocolResponse> DecodeResponse(const JsonValue& json);
/// Compact single-line encoding, newline-terminated (the wire format).
std::string WriteResponseLine(const ProtocolResponse& response);
/// Parses one response line (the client side of the codec).
Result<ProtocolResponse> ParseResponseLine(const std::string& line);
/// @}

/// \brief Builds the success response for `request` with payload `result`.
ProtocolResponse MakeOkResponse(const ProtocolRequest& request,
                                JsonValue result);

/// \brief Builds the error response for `request` (pass a default-built
/// request for lines that failed to parse: the response then carries no id).
ProtocolResponse MakeErrorResponse(const ProtocolRequest& request,
                                   Status error);

/// \brief Maps a `StatusCodeToString` name back to its code (Unknown for
/// unrecognized names, so foreign responses still decode).
StatusCode StatusCodeFromString(const std::string& name);

}  // namespace sisd::serialize

#endif  // SISD_SERIALIZE_PROTOCOL_HPP_
