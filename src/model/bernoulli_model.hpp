/// \file bernoulli_model.hpp
/// \brief Bernoulli background model for binary target attributes — the
/// extension the paper sketches but leaves as future work (§III-B: "That
/// the attributes are binary is another form of background knowledge that
/// could in principle be incorporated into the method, but it would lead
/// to different derivations"; §V: "study similar pattern syntaxes for
/// binary ... target attributes").
///
/// The belief state is a product of independent Bernoulli variables, one
/// per (row, attribute): `P(Y) = prod_{i,j} p_{ij}^{y_ij}(1-p_{ij})^{1-y_ij}`
/// — the MaxEnt distribution subject to the user's expectations about
/// per-attribute presence rates. Assimilating a location pattern (the
/// subgroup's observed mean vector) is the minimal-KL update, which for an
/// exponential family is an exponential tilt: per attribute j,
/// `logit(p'_ij) = logit(p_ij) + lambda_j` for rows in the extension, with
/// `lambda_j` the unique solution of the mean constraint. This mirrors
/// Theorem 1 exactly, with the Gaussian natural parameters replaced by
/// log-odds.
///
/// The IC of a location pattern uses a per-attribute normal approximation
/// to the Poisson-binomial law of the subgroup's presence counts (exact
/// mean and variance; attributes are independent under the model, so the
/// joint IC is the sum). Spread patterns are intentionally unsupported:
/// a Bernoulli variance is determined by its mean, the very observation
/// that led the paper to mine location patterns only on the mammals data.

#ifndef SISD_MODEL_BERNOULLI_MODEL_HPP_
#define SISD_MODEL_BERNOULLI_MODEL_HPP_

#include <vector>

#include "common/status.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "pattern/extension.hpp"

namespace sisd::model {

/// \brief Rows sharing identical Bernoulli parameters.
struct BernoulliGroup {
  linalg::Vector p;            ///< success probability per attribute
  pattern::Extension rows{0};  ///< rows carrying these parameters

  size_t count() const { return rows.count(); }
};

/// \brief Product-of-Bernoullis belief state over a binary target matrix.
class BernoulliBackgroundModel {
 public:
  /// Initial model: every row has success probabilities `p` (entries
  /// strictly inside (0, 1)).
  static Result<BernoulliBackgroundModel> Create(size_t num_rows,
                                                 linalg::Vector p);

  /// Initial model from the empirical column means of binary matrix `y`,
  /// clamped into `[clamp, 1 - clamp]` so degenerate columns keep a proper
  /// exponential-family representation.
  static Result<BernoulliBackgroundModel> CreateFromData(
      const linalg::Matrix& y, double clamp = 1e-3);

  size_t num_rows() const { return num_rows_; }
  size_t dim() const { return dim_; }
  size_t num_groups() const { return groups_.size(); }

  size_t GroupOf(size_t row) const {
    SISD_DCHECK(row < num_rows_);
    return group_of_row_[row];
  }

  const BernoulliGroup& group(size_t g) const {
    SISD_DCHECK(g < groups_.size());
    return groups_[g];
  }

  /// Success probabilities of one row.
  const linalg::Vector& ProbabilitiesOf(size_t row) const {
    return groups_[GroupOf(row)].p;
  }

  /// Expected subgroup mean `E[sum_{i in I} y_i / |I|]`.
  linalg::Vector ExpectedSubgroupMean(
      const pattern::Extension& extension) const;

  /// \brief Minimal-KL update so the expected subgroup mean equals
  /// `target_mean` (entries clamped away from 0/1 by half a count).
  /// Returns the largest |lambda_j| applied (0 means no-op).
  Result<double> UpdateLocation(const pattern::Extension& extension,
                                const linalg::Vector& target_mean);

  /// \brief IC of a location pattern: per attribute, the negative log of
  /// the (normal-approximated) density of the observed presence count
  /// under the model's Poisson-binomial law; summed over attributes.
  double LocationIC(const pattern::Extension& extension,
                    const linalg::Vector& observed_mean) const;

  /// Per-attribute IC (the Fig. 5 ranking under the Bernoulli model).
  linalg::Vector PerAttributeIC(const pattern::Extension& extension,
                                const linalg::Vector& observed_mean) const;

  /// Row-wise KL divergence `sum_i KL(this_i || other_i)` (diagnostics).
  double KlDivergenceFrom(const BernoulliBackgroundModel& other) const;

 private:
  BernoulliBackgroundModel() = default;

  std::vector<size_t> SplitGroupsFor(const pattern::Extension& extension);

  size_t num_rows_ = 0;
  size_t dim_ = 0;
  std::vector<BernoulliGroup> groups_;
  std::vector<uint32_t> group_of_row_;
};

/// \brief Solves the tilt `lambda` with
/// `sum_g count_g * sigmoid(logit_g + lambda) = target_count` for
/// monotone-increasing LHS; `target_count` must lie strictly between 0 and
/// the total count. Exposed for testing.
Result<double> SolveBernoulliTilt(const std::vector<double>& logits,
                                  const std::vector<double>& counts,
                                  double target_count,
                                  double tolerance = 1e-12,
                                  int max_iterations = 200);

}  // namespace sisd::model

#endif  // SISD_MODEL_BERNOULLI_MODEL_HPP_
