file(REMOVE_RECURSE
  "libsisd_model.a"
)
