file(REMOVE_RECURSE
  "CMakeFiles/sisd_model.dir/assimilator.cpp.o"
  "CMakeFiles/sisd_model.dir/assimilator.cpp.o.d"
  "CMakeFiles/sisd_model.dir/background_model.cpp.o"
  "CMakeFiles/sisd_model.dir/background_model.cpp.o.d"
  "CMakeFiles/sisd_model.dir/bernoulli_model.cpp.o"
  "CMakeFiles/sisd_model.dir/bernoulli_model.cpp.o.d"
  "libsisd_model.a"
  "libsisd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
