# Empty dependencies file for sisd_model.
# This may be replaced when dependencies are built.
