/// \file background_model.hpp
/// \brief The FORSIED background distribution over the target matrix
/// (paper §II-B).
///
/// The user's belief state is a product of independent multivariate normal
/// distributions, one per data row:
///   p_t(Y) = prod_i N(y_i; mu_i^t, Sigma_i^t).
/// Initially (MaxEnt subject to mean/covariance expectations) all rows share
/// one (mu, Sigma). Assimilating a pattern is a minimal-KL update that keeps
/// the parametric form and only changes parameters of rows in the pattern's
/// extension (Theorems 1 and 2).
///
/// Rows that have been subjected to the same sequence of updates share
/// parameters (the paper's footnote 2), so the model stores a small set of
/// parameter *groups* plus a row->group map; group count grows only when an
/// update splits an existing group.

#ifndef SISD_MODEL_BACKGROUND_MODEL_HPP_
#define SISD_MODEL_BACKGROUND_MODEL_HPP_

#include <memory>
#include <vector>

#include "common/status.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "pattern/extension.hpp"

namespace sisd::model {

/// \brief Parameters shared by a set of rows (one cell of the tiling).
struct ParameterGroup {
  linalg::Vector mu;      ///< mean
  linalg::Matrix sigma;   ///< covariance (SPD)
  pattern::Extension rows{0};  ///< rows carrying these parameters

  /// Number of rows in the group.
  size_t count() const { return rows.count(); }
};

/// \brief Marginal distribution of the subgroup-mean statistic
/// `f_I(Y) = sum_{i in I} y_i / |I|` under the background model.
///
/// For independent rows this is `N(mean, cov)` with
/// `mean = sum mu_i / |I|` and `cov = sum Sigma_i / |I|^2` (see DESIGN.md on
/// the paper's Eq. 13 typo).
struct MeanStatisticMarginal {
  linalg::Vector mean;
  linalg::Matrix cov;
};

/// \brief Per-group term of the directional-variance statistic's law.
///
/// Under the model (anchored at the pattern's empirical mean `yhat_I`), the
/// statistic `g^w_I(Y)` is a weighted sum of noncentral chi-squares; the IC
/// computation needs, per group g intersecting I:
///   s = w' Sigma_g w   (variance along w),
///   d = w' (yhat_I - mu_g) (mean offset along w),
///   count = |g intersect I|.
struct DirectionalTerm {
  double s = 0.0;
  double d = 0.0;
  size_t count = 0;
};

/// \brief The evolving background distribution p_t.
class BackgroundModel {
 public:
  /// Initial MaxEnt model: all `num_rows` rows are `N(mu, sigma)`.
  /// Fails when `sigma` is not SPD or dimensions disagree.
  static Result<BackgroundModel> Create(size_t num_rows, linalg::Vector mu,
                                        linalg::Matrix sigma);

  /// Initial model from the empirical mean and covariance of `y`
  /// (the setup used in all of the paper's experiments). A small ridge
  /// (`ridge` times the average diagonal) keeps the covariance SPD when the
  /// data matrix is rank-deficient, as with the 124 binary mammal targets.
  static Result<BackgroundModel> CreateFromData(const linalg::Matrix& y,
                                                double ridge = 1e-8);

  /// Rebuilds a model from serialized parts (snapshot restore). The groups'
  /// row sets must partition `[0, num_rows)`; `factors[g]` restores group
  /// `g`'s cached Cholesky factor (nullptr = not cached, stays lazy) so a
  /// restored model scores bit-identically to the live model it was saved
  /// from. `factors` may be empty (no cached factors at all).
  static Result<BackgroundModel> RestoreFromParts(
      size_t num_rows, size_t dim, std::vector<ParameterGroup> groups,
      std::vector<std::shared_ptr<const linalg::Cholesky>> factors);

  /// Number of rows modeled.
  size_t num_rows() const { return num_rows_; }

  /// Target dimensionality dy.
  size_t dim() const { return dim_; }

  /// Number of parameter groups currently distinguished.
  size_t num_groups() const { return groups_.size(); }

  /// Group index of a row.
  size_t GroupOf(size_t row) const {
    SISD_DCHECK(row < num_rows_);
    return group_of_row_[row];
  }

  /// Row -> group map (one entry per row; the evaluation engine precomputes
  /// per-row group ids from this).
  const std::vector<uint32_t>& GroupOfRows() const { return group_of_row_; }

  /// Group by index.
  const ParameterGroup& group(size_t g) const {
    SISD_DCHECK(g < groups_.size());
    return groups_[g];
  }

  /// Mean parameter of a row.
  const linalg::Vector& MeanOf(size_t row) const {
    return groups_[GroupOf(row)].mu;
  }

  /// Covariance parameter of a row.
  const linalg::Matrix& CovarianceOf(size_t row) const {
    return groups_[GroupOf(row)].sigma;
  }

  /// Natural parameters of a row: `theta1 = Sigma^{-1} mu` and
  /// `theta2 = -0.5 * Sigma^{-1}` (the representation the paper recommends
  /// maintaining; exposed for tests and diagnostics).
  linalg::Vector NaturalTheta1(size_t row) const;
  linalg::Matrix NaturalTheta2(size_t row) const;

  /// Cached Cholesky factorization of group `g`'s covariance.
  const linalg::Cholesky& GroupCholesky(size_t g) const;

  /// The cached factor of group `g` as currently held, or nullptr when none
  /// is cached (never computes one). Spread assimilation maintains cached
  /// factors by O(d^2) rank-one updates, so their low-order bits can differ
  /// from a fresh factorization of `group(g).sigma` (within ~1e-10); the
  /// snapshot serializer saves exactly this state to make save/restore
  /// bit-transparent.
  std::shared_ptr<const linalg::Cholesky> CachedGroupFactor(size_t g) const {
    SISD_DCHECK(g < group_chol_.size());
    return group_chol_[g];
  }

  /// Cached log-determinant of group `g`'s covariance.
  double GroupLogDetSigma(size_t g) const;

  /// Number of rows of each group inside `extension`
  /// (vector indexed by group id).
  std::vector<size_t> GroupCounts(const pattern::Extension& extension) const;

  /// Allocation-free variant: writes the per-group counts into `*out`
  /// (resized to `num_groups()` if needed).
  void GroupCountsInto(const pattern::Extension& extension,
                       std::vector<size_t>* out) const;

  /// Per-group counts of the *virtual* extension `a & b`, computed with a
  /// fused masked popcount (nothing materialized).
  void GroupCountsMaskedInto(const pattern::Extension& a,
                             const pattern::Extension& b,
                             std::vector<size_t>* out) const;

  /// Forces every group's Cholesky factorization into the cache. Call this
  /// before sharing the model read-only across threads: `GroupCholesky` is
  /// lazily caching and therefore not safe for concurrent first access.
  void WarmGroupCaches() const;

  /// Marginal law of the subgroup-mean statistic for `extension`.
  MeanStatisticMarginal MeanStatMarginal(
      const pattern::Extension& extension) const;

  /// Marginal law from precomputed per-group counts (`counts[g]` rows of
  /// group `g`; `size` = their sum, > 0). The single implementation behind
  /// `MeanStatMarginal` and the evaluation engine's marginal cache, so both
  /// paths are bit-identical by construction.
  MeanStatisticMarginal MeanStatMarginalFromCounts(
      const std::vector<size_t>& counts, double size) const;

  /// Per-group terms of the directional-variance law for `extension`,
  /// direction `w` (unit), anchored at `anchor` (the empirical mean).
  std::vector<DirectionalTerm> DirectionalTerms(
      const pattern::Extension& extension, const linalg::Vector& w,
      const linalg::Vector& anchor) const;

  /// \brief Theorem 1: minimal-KL update so that the expected subgroup mean
  /// of `extension` equals `target_mean`.
  ///
  /// Solves `lambda = SigmaBar_I^{-1} (target_mean - muBar_I)` and sets
  /// `mu_i += Sigma_i lambda` for rows in the extension. Covariances are
  /// unchanged. Returns the KKT multiplier norm (0 means it was a no-op).
  Result<double> UpdateLocation(const pattern::Extension& extension,
                                const linalg::Vector& target_mean);

  /// \brief Theorem 2: minimal-KL update so that the expected directional
  /// variance of `extension` along `w` (anchored at `anchor`) equals
  /// `target_variance`.
  ///
  /// Finds the unique root `lambda` of Eq. (12) and applies the rank-1
  /// updates of Eqs. (10)-(11). Returns the multiplier `lambda`.
  Result<double> UpdateSpread(const pattern::Extension& extension,
                              const linalg::Vector& w,
                              const linalg::Vector& anchor,
                              double target_variance);

  /// Log density of a full data matrix under the model (test utility).
  double LogDensity(const linalg::Matrix& y) const;

  /// Row-wise KL divergence `sum_i KL(this_i || other_i)`; models must have
  /// identical shape. Used to check coordinate-descent convergence.
  double KlDivergenceFrom(const BackgroundModel& other) const;

  /// Largest absolute parameter difference vs `other` (mu and Sigma entries).
  double MaxParameterDelta(const BackgroundModel& other) const;

  /// Expected value of the subgroup-mean statistic (convenience).
  linalg::Vector ExpectedSubgroupMean(
      const pattern::Extension& extension) const;

  /// Expected value of the directional-variance statistic (convenience):
  /// `E[g^w_I] = sum_i (s_i + d_i^2) / |I|`.
  double ExpectedDirectionalVariance(const pattern::Extension& extension,
                                     const linalg::Vector& w,
                                     const linalg::Vector& anchor) const;

 private:
  BackgroundModel() = default;

  /// Ensures every group is fully inside or fully outside `extension`,
  /// splitting groups as needed; returns ids of groups inside.
  std::vector<size_t> SplitGroupsFor(const pattern::Extension& extension);

  /// Keeps group `g`'s cached factor in sync with the covariance
  /// perturbation `Sigma += alpha * v v'` via an O(d^2) rank-one
  /// update/downdate (copy-on-write: split siblings may share the factor).
  /// No-op when nothing is cached; falls back to invalidation when the
  /// downdate loses positive definiteness numerically.
  void RefreshGroupFactorRankOne(size_t g, const linalg::Vector& v,
                                 double alpha);

  size_t num_rows_ = 0;
  size_t dim_ = 0;
  std::vector<ParameterGroup> groups_;
  std::vector<uint32_t> group_of_row_;
  /// Lazily computed per-group Cholesky factors (nullptr = stale).
  mutable std::vector<std::shared_ptr<const linalg::Cholesky>> group_chol_;
};

/// \brief Root of Eq. (12): finds `lambda` such that
/// `sum_g count_g * [ s_g/(1+lambda s_g) + (d_g/(1+lambda s_g))^2 ]
///    = total_count * target_variance`.
///
/// The left side is strictly decreasing on `(-1/max_g s_g, +inf)` and spans
/// `(0, +inf)`, so a unique root exists for any positive right side. Exposed
/// for direct testing. Uses safeguarded Newton iterations.
Result<double> SolveSpreadLambda(const std::vector<DirectionalTerm>& terms,
                                 double target_variance,
                                 double tolerance = 1e-12,
                                 int max_iterations = 200);

}  // namespace sisd::model

#endif  // SISD_MODEL_BACKGROUND_MODEL_HPP_
