/// \file assimilator.hpp
/// \brief Maintains the set of assimilated patterns and re-fits the
/// background distribution by cyclic coordinate descent (paper §II-B,
/// "Accounting for a set of location and spread patterns").
///
/// Each pattern contributes one expectation constraint; the KL projection
/// onto a single constraint is exact (Theorems 1-2), and cycling the exact
/// projections converges to the joint minimum-KL distribution because the
/// problem is convex. With non-overlapping extensions one sweep suffices;
/// with overlaps a few sweeps are needed (the convergence loop measures the
/// largest parameter change per sweep).

#ifndef SISD_MODEL_ASSIMILATOR_HPP_
#define SISD_MODEL_ASSIMILATOR_HPP_

#include <vector>

#include "common/status.hpp"
#include "model/background_model.hpp"
#include "pattern/extension.hpp"

namespace sisd::model {

/// \brief One assimilated pattern's constraint.
struct AssimilatedConstraint {
  enum class Kind { kLocation, kSpread };

  Kind kind = Kind::kLocation;
  pattern::Extension extension{0};
  /// Location: the constrained subgroup mean. Spread: the anchor `yhat_I`.
  linalg::Vector mean;
  /// Spread only: unit direction.
  linalg::Vector direction;
  /// Spread only: the constrained variance along `direction`.
  double variance = 0.0;
};

/// \brief Statistics of one `Refit` run (used by the Table II bench).
struct RefitStats {
  int sweeps = 0;               ///< sweeps executed
  double final_delta = 0.0;     ///< max parameter change in the last sweep
  bool converged = false;       ///< delta dropped below tolerance
};

/// \brief Owns a BackgroundModel plus the constraints assimilated into it.
class PatternAssimilator {
 public:
  /// Takes ownership of the initial (pattern-free) model.
  explicit PatternAssimilator(BackgroundModel model)
      : initial_model_(model), model_(std::move(model)) {}

  /// Rebuilds an assimilator from serialized parts (snapshot restore): the
  /// pattern-free initial model, the fitted current model, and the
  /// registered constraints, exactly as saved.
  static PatternAssimilator Restore(
      BackgroundModel initial_model, BackgroundModel model,
      std::vector<AssimilatedConstraint> constraints) {
    PatternAssimilator out(std::move(initial_model));
    out.model_ = std::move(model);
    out.constraints_ = std::move(constraints);
    return out;
  }

  /// The current (fitted) background model.
  const BackgroundModel& model() const { return model_; }

  /// The pattern-free model the session started from (`RefitFromScratch`
  /// resets to this; the snapshot serializer saves it).
  const BackgroundModel& initial_model() const { return initial_model_; }

  /// Mutable access (tests only).
  BackgroundModel* mutable_model() { return &model_; }

  /// Number of assimilated constraints.
  size_t num_constraints() const { return constraints_.size(); }

  /// The registered constraints in assimilation order.
  const std::vector<AssimilatedConstraint>& constraints() const {
    return constraints_;
  }

  /// Registers a location pattern and applies its projection once.
  Status AddLocationPattern(const pattern::Extension& extension,
                            const linalg::Vector& subgroup_mean);

  /// Registers a spread pattern and applies its projection once.
  Status AddSpreadPattern(const pattern::Extension& extension,
                          const linalg::Vector& direction,
                          const linalg::Vector& anchor, double variance);

  /// Cyclic coordinate descent over all constraints until the largest
  /// parameter change in a sweep drops below `tolerance` (or `max_sweeps`).
  Result<RefitStats> Refit(int max_sweeps = 100, double tolerance = 1e-9);

  /// Re-fits from the *initial* model (the paper's Table II measures this
  /// full refit cost as patterns accumulate).
  Result<RefitStats> RefitFromScratch(int max_sweeps = 100,
                                      double tolerance = 1e-9);

  /// Maximum violation of the registered constraints under the current
  /// model (diagnostic; ~0 after a converged refit).
  double MaxConstraintViolation() const;

 private:
  /// Applies one projection for constraint `c` onto the current model.
  Status ApplyConstraint(const AssimilatedConstraint& c);

  BackgroundModel initial_model_;
  BackgroundModel model_;
  std::vector<AssimilatedConstraint> constraints_;
};

}  // namespace sisd::model

#endif  // SISD_MODEL_ASSIMILATOR_HPP_
