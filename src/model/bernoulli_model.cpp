#include "model/bernoulli_model.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace sisd::model {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double Logit(double p) { return std::log(p / (1.0 - p)); }

}  // namespace

Result<BernoulliBackgroundModel> BernoulliBackgroundModel::Create(
    size_t num_rows, linalg::Vector p) {
  if (num_rows == 0) {
    return Status::InvalidArgument("model needs at least one row");
  }
  if (p.empty()) {
    return Status::InvalidArgument("model needs at least one attribute");
  }
  for (size_t j = 0; j < p.size(); ++j) {
    if (!(p[j] > 0.0 && p[j] < 1.0)) {
      return Status::InvalidArgument(
          "success probabilities must lie strictly inside (0, 1)");
    }
  }
  BernoulliBackgroundModel model;
  model.num_rows_ = num_rows;
  model.dim_ = p.size();
  BernoulliGroup group;
  group.p = std::move(p);
  group.rows = pattern::Extension(num_rows, /*full=*/true);
  model.groups_.push_back(std::move(group));
  model.group_of_row_.assign(num_rows, 0);
  return model;
}

Result<BernoulliBackgroundModel> BernoulliBackgroundModel::CreateFromData(
    const linalg::Matrix& y, double clamp) {
  if (y.rows() == 0 || y.cols() == 0) {
    return Status::InvalidArgument("empty target matrix");
  }
  if (!(clamp > 0.0 && clamp < 0.5)) {
    return Status::InvalidArgument("clamp must lie in (0, 0.5)");
  }
  for (size_t i = 0; i < y.rows(); ++i) {
    for (size_t j = 0; j < y.cols(); ++j) {
      const double v = y(i, j);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument(
            "Bernoulli model requires a 0/1 target matrix");
      }
    }
  }
  linalg::Vector p = stats::ColumnMeans(y);
  for (size_t j = 0; j < p.size(); ++j) {
    p[j] = std::min(1.0 - clamp, std::max(clamp, p[j]));
  }
  return Create(y.rows(), std::move(p));
}

linalg::Vector BernoulliBackgroundModel::ExpectedSubgroupMean(
    const pattern::Extension& extension) const {
  SISD_CHECK(!extension.empty());
  SISD_CHECK(extension.universe_size() == num_rows_);
  linalg::Vector mean(dim_);
  for (const BernoulliGroup& group : groups_) {
    const size_t overlap =
        pattern::Extension::IntersectionCount(group.rows, extension);
    if (overlap == 0) continue;
    mean.AddScaled(group.p, double(overlap));
  }
  mean /= double(extension.count());
  return mean;
}

Result<double> BernoulliBackgroundModel::UpdateLocation(
    const pattern::Extension& extension, const linalg::Vector& target_mean) {
  if (extension.empty()) {
    return Status::InvalidArgument("empty extension");
  }
  if (target_mean.size() != dim_) {
    return Status::InvalidArgument("target mean dimension mismatch");
  }
  const std::vector<size_t> inside = SplitGroupsFor(extension);
  const double size = double(extension.count());
  double max_tilt = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    // Clamp the target count half a unit away from the degenerate ends so
    // the tilt stays finite even for all-present / all-absent subgroups.
    const double target_count = std::min(
        size - 0.5, std::max(0.5, target_mean[j] * size));
    std::vector<double> logits, counts;
    logits.reserve(inside.size());
    counts.reserve(inside.size());
    for (size_t g : inside) {
      logits.push_back(Logit(groups_[g].p[j]));
      counts.push_back(double(groups_[g].count()));
    }
    SISD_ASSIGN_OR_RETURN(lambda,
                          SolveBernoulliTilt(logits, counts, target_count));
    for (size_t k = 0; k < inside.size(); ++k) {
      groups_[inside[k]].p[j] = Sigmoid(logits[k] + lambda);
    }
    max_tilt = std::max(max_tilt, std::fabs(lambda));
  }
  return max_tilt;
}

linalg::Vector BernoulliBackgroundModel::PerAttributeIC(
    const pattern::Extension& extension,
    const linalg::Vector& observed_mean) const {
  SISD_CHECK(!extension.empty());
  SISD_CHECK(observed_mean.size() == dim_);
  const double size = double(extension.count());
  // Poisson-binomial mean/variance of the presence count per attribute.
  linalg::Vector mu(dim_), var(dim_);
  for (const BernoulliGroup& group : groups_) {
    const size_t overlap =
        pattern::Extension::IntersectionCount(group.rows, extension);
    if (overlap == 0) continue;
    for (size_t j = 0; j < dim_; ++j) {
      mu[j] += double(overlap) * group.p[j];
      var[j] += double(overlap) * group.p[j] * (1.0 - group.p[j]);
    }
  }
  linalg::Vector ic(dim_);
  for (size_t j = 0; j < dim_; ++j) {
    const double v = std::max(var[j], 1e-12);
    const double s = observed_mean[j] * size;
    const double z2 = (s - mu[j]) * (s - mu[j]) / v;
    // Negative log of the normal density approximating the count's pmf.
    ic[j] = 0.5 * (kLog2Pi + std::log(v)) + 0.5 * z2;
  }
  return ic;
}

double BernoulliBackgroundModel::LocationIC(
    const pattern::Extension& extension,
    const linalg::Vector& observed_mean) const {
  return PerAttributeIC(extension, observed_mean).Sum();
}

double BernoulliBackgroundModel::KlDivergenceFrom(
    const BernoulliBackgroundModel& other) const {
  SISD_CHECK(num_rows_ == other.num_rows_ && dim_ == other.dim_);
  double acc = 0.0;
  for (size_t i = 0; i < num_rows_; ++i) {
    const linalg::Vector& p = ProbabilitiesOf(i);
    const linalg::Vector& q = other.ProbabilitiesOf(i);
    for (size_t j = 0; j < dim_; ++j) {
      acc += p[j] * std::log(p[j] / q[j]) +
             (1.0 - p[j]) * std::log((1.0 - p[j]) / (1.0 - q[j]));
    }
  }
  return acc;
}

std::vector<size_t> BernoulliBackgroundModel::SplitGroupsFor(
    const pattern::Extension& extension) {
  SISD_CHECK(extension.universe_size() == num_rows_);
  std::vector<size_t> inside;
  const size_t original = groups_.size();
  for (size_t g = 0; g < original; ++g) {
    const size_t overlap =
        pattern::Extension::IntersectionCount(groups_[g].rows, extension);
    if (overlap == 0) continue;
    if (overlap == groups_[g].count()) {
      inside.push_back(g);
      continue;
    }
    pattern::Extension moved =
        pattern::Extension::Intersect(groups_[g].rows, extension);
    BernoulliGroup fresh;
    fresh.p = groups_[g].p;
    fresh.rows = moved;
    const size_t fresh_id = groups_.size();
    for (size_t row : moved.ToRows()) {
      groups_[g].rows.Erase(row);
      group_of_row_[row] = static_cast<uint32_t>(fresh_id);
    }
    groups_.push_back(std::move(fresh));
    inside.push_back(fresh_id);
  }
  return inside;
}

Result<double> SolveBernoulliTilt(const std::vector<double>& logits,
                                  const std::vector<double>& counts,
                                  double target_count, double tolerance,
                                  int max_iterations) {
  if (logits.empty() || logits.size() != counts.size()) {
    return Status::InvalidArgument("logits/counts size mismatch");
  }
  double total = 0.0;
  for (double c : counts) {
    if (!(c > 0.0)) return Status::InvalidArgument("nonpositive count");
    total += c;
  }
  if (!(target_count > 0.0 && target_count < total)) {
    return Status::InvalidArgument(
        "target count must lie strictly between 0 and the total");
  }

  auto value_and_derivative = [&](double lambda) {
    double value = 0.0;
    double derivative = 0.0;
    for (size_t k = 0; k < logits.size(); ++k) {
      const double s = Sigmoid(logits[k] + lambda);
      value += counts[k] * s;
      derivative += counts[k] * s * (1.0 - s);
    }
    return std::pair<double, double>(value, derivative);
  };

  // Bracket: LHS is strictly increasing from 0 to total.
  double lo = -1.0, hi = 1.0;
  for (int iter = 0;
       iter < 200 && value_and_derivative(lo).first > target_count; ++iter) {
    lo *= 2.0;
  }
  for (int iter = 0;
       iter < 200 && value_and_derivative(hi).first < target_count; ++iter) {
    hi *= 2.0;
  }

  double lambda = 0.0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    const auto [value, derivative] = value_and_derivative(lambda);
    const double residual = value - target_count;
    if (std::fabs(residual) <= tolerance * std::max(1.0, target_count)) {
      return lambda;
    }
    if (residual > 0.0) {
      hi = lambda;
    } else {
      lo = lambda;
    }
    double next = lambda;
    if (derivative > 0.0) next = lambda - residual / derivative;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (next == lambda) return lambda;
    lambda = next;
  }
  return lambda;
}

}  // namespace sisd::model
