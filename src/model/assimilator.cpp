#include "model/assimilator.hpp"

#include <cmath>

namespace sisd::model {

Status PatternAssimilator::AddLocationPattern(
    const pattern::Extension& extension, const linalg::Vector& subgroup_mean) {
  AssimilatedConstraint c;
  c.kind = AssimilatedConstraint::Kind::kLocation;
  c.extension = extension;
  c.mean = subgroup_mean;
  SISD_RETURN_NOT_OK(ApplyConstraint(c));
  constraints_.push_back(std::move(c));
  return Status::OK();
}

Status PatternAssimilator::AddSpreadPattern(const pattern::Extension& extension,
                                            const linalg::Vector& direction,
                                            const linalg::Vector& anchor,
                                            double variance) {
  AssimilatedConstraint c;
  c.kind = AssimilatedConstraint::Kind::kSpread;
  c.extension = extension;
  c.direction = direction.Normalized();
  c.mean = anchor;
  c.variance = variance;
  SISD_RETURN_NOT_OK(ApplyConstraint(c));
  constraints_.push_back(std::move(c));
  return Status::OK();
}

Result<RefitStats> PatternAssimilator::Refit(int max_sweeps,
                                             double tolerance) {
  RefitStats stats;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    BackgroundModel before = model_;
    for (const AssimilatedConstraint& c : constraints_) {
      SISD_RETURN_NOT_OK(ApplyConstraint(c));
    }
    ++stats.sweeps;
    stats.final_delta = model_.MaxParameterDelta(before);
    if (stats.final_delta < tolerance) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

Result<RefitStats> PatternAssimilator::RefitFromScratch(int max_sweeps,
                                                        double tolerance) {
  model_ = initial_model_;
  return Refit(max_sweeps, tolerance);
}

double PatternAssimilator::MaxConstraintViolation() const {
  double worst = 0.0;
  for (const AssimilatedConstraint& c : constraints_) {
    if (c.kind == AssimilatedConstraint::Kind::kLocation) {
      const linalg::Vector expected =
          model_.ExpectedSubgroupMean(c.extension);
      worst = std::max(worst, linalg::MaxAbsDiff(expected, c.mean));
    } else {
      const double expected = model_.ExpectedDirectionalVariance(
          c.extension, c.direction, c.mean);
      worst = std::max(worst, std::fabs(expected - c.variance));
    }
  }
  return worst;
}

Status PatternAssimilator::ApplyConstraint(const AssimilatedConstraint& c) {
  if (c.kind == AssimilatedConstraint::Kind::kLocation) {
    Result<double> r = model_.UpdateLocation(c.extension, c.mean);
    return r.status().ok() ? Status::OK() : r.status();
  }
  Result<double> r =
      model_.UpdateSpread(c.extension, c.direction, c.mean, c.variance);
  return r.status().ok() ? Status::OK() : r.status();
}

}  // namespace sisd::model
