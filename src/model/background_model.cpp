#include "model/background_model.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "stats/descriptive.hpp"

namespace sisd::model {

namespace {

constexpr double kSqrtTwoPiLog = 1.8378770664093453;  // log(2*pi)

}  // namespace

Result<BackgroundModel> BackgroundModel::Create(size_t num_rows,
                                                linalg::Vector mu,
                                                linalg::Matrix sigma) {
  if (num_rows == 0) {
    return Status::InvalidArgument("background model needs at least one row");
  }
  if (sigma.rows() != mu.size() || sigma.cols() != mu.size()) {
    return Status::InvalidArgument("mu/sigma dimension mismatch");
  }
  Result<linalg::Cholesky> chol = linalg::Cholesky::Compute(sigma);
  if (!chol.ok()) {
    return Status::NumericalError("initial covariance is not SPD: " +
                                  chol.status().message());
  }
  BackgroundModel model;
  model.num_rows_ = num_rows;
  model.dim_ = mu.size();
  ParameterGroup group;
  group.mu = std::move(mu);
  group.sigma = std::move(sigma);
  group.rows = pattern::Extension(num_rows, /*full=*/true);
  model.groups_.push_back(std::move(group));
  model.group_of_row_.assign(num_rows, 0);
  model.group_chol_.push_back(
      std::make_shared<const linalg::Cholesky>(std::move(chol).MoveValue()));
  return model;
}

Result<BackgroundModel> BackgroundModel::CreateFromData(
    const linalg::Matrix& y, double ridge) {
  if (y.rows() == 0 || y.cols() == 0) {
    return Status::InvalidArgument("empty target matrix");
  }
  linalg::Vector mu = stats::ColumnMeans(y);
  linalg::Matrix sigma = stats::CovarianceMatrix(y);
  if (ridge > 0.0) {
    const double avg_diag = sigma.Trace() / double(sigma.rows());
    const double jitter = std::max(avg_diag, 1e-12) * ridge;
    for (size_t i = 0; i < sigma.rows(); ++i) sigma(i, i) += jitter;
  }
  return Create(y.rows(), std::move(mu), std::move(sigma));
}

Result<BackgroundModel> BackgroundModel::RestoreFromParts(
    size_t num_rows, size_t dim, std::vector<ParameterGroup> groups,
    std::vector<std::shared_ptr<const linalg::Cholesky>> factors) {
  if (num_rows == 0 || dim == 0) {
    return Status::InvalidArgument("restored model needs rows and dims");
  }
  if (groups.empty()) {
    return Status::InvalidArgument("restored model needs parameter groups");
  }
  if (!factors.empty() && factors.size() != groups.size()) {
    return Status::InvalidArgument(
        "factor count must match group count (or be zero)");
  }
  std::vector<uint32_t> group_of_row(num_rows,
                                     uint32_t(groups.size()));  // sentinel
  for (size_t g = 0; g < groups.size(); ++g) {
    const ParameterGroup& group = groups[g];
    if (group.mu.size() != dim || group.sigma.rows() != dim ||
        group.sigma.cols() != dim) {
      return Status::InvalidArgument(
          StrFormat("group %zu parameter dimensions disagree with dy=%zu", g,
                    dim));
    }
    if (group.rows.universe_size() != num_rows) {
      return Status::InvalidArgument(
          StrFormat("group %zu row universe disagrees with num_rows", g));
    }
    if (!factors.empty() && factors[g] && factors[g]->dim() != dim) {
      return Status::InvalidArgument(
          StrFormat("group %zu cached factor dimension mismatch", g));
    }
    bool overlap = false;
    group.rows.ForEachRow([&](size_t row) {
      if (group_of_row[row] != groups.size()) overlap = true;
      group_of_row[row] = static_cast<uint32_t>(g);
    });
    if (overlap) {
      return Status::InvalidArgument(
          StrFormat("group %zu overlaps an earlier group's rows", g));
    }
  }
  for (size_t row = 0; row < num_rows; ++row) {
    if (group_of_row[row] == groups.size()) {
      return Status::InvalidArgument(
          StrFormat("row %zu belongs to no parameter group", row));
    }
  }
  BackgroundModel model;
  model.num_rows_ = num_rows;
  model.dim_ = dim;
  model.groups_ = std::move(groups);
  model.group_of_row_ = std::move(group_of_row);
  model.group_chol_.assign(model.groups_.size(), nullptr);
  for (size_t g = 0; g < factors.size(); ++g) {
    model.group_chol_[g] = std::move(factors[g]);
  }
  return model;
}

linalg::Vector BackgroundModel::NaturalTheta1(size_t row) const {
  const size_t g = GroupOf(row);
  return GroupCholesky(g).Solve(groups_[g].mu);
}

linalg::Matrix BackgroundModel::NaturalTheta2(size_t row) const {
  const size_t g = GroupOf(row);
  linalg::Matrix inv = GroupCholesky(g).Inverse();
  inv *= -0.5;
  return inv;
}

const linalg::Cholesky& BackgroundModel::GroupCholesky(size_t g) const {
  SISD_DCHECK(g < groups_.size());
  if (!group_chol_[g]) {
    Result<linalg::Cholesky> chol =
        linalg::Cholesky::Compute(groups_[g].sigma);
    chol.status().CheckOK();
    group_chol_[g] = std::make_shared<const linalg::Cholesky>(
        std::move(chol).MoveValue());
  }
  return *group_chol_[g];
}

double BackgroundModel::GroupLogDetSigma(size_t g) const {
  return GroupCholesky(g).LogDeterminant();
}

std::vector<size_t> BackgroundModel::GroupCounts(
    const pattern::Extension& extension) const {
  std::vector<size_t> counts;
  GroupCountsInto(extension, &counts);
  return counts;
}

void BackgroundModel::GroupCountsInto(const pattern::Extension& extension,
                                      std::vector<size_t>* out) const {
  SISD_CHECK(extension.universe_size() == num_rows_);
  SISD_CHECK(out != nullptr);
  out->resize(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    (*out)[g] = pattern::Extension::IntersectionCount(groups_[g].rows,
                                                      extension);
  }
}

void BackgroundModel::GroupCountsMaskedInto(const pattern::Extension& a,
                                            const pattern::Extension& b,
                                            std::vector<size_t>* out) const {
  SISD_CHECK(a.universe_size() == num_rows_ &&
             b.universe_size() == num_rows_);
  SISD_CHECK(out != nullptr);
  out->resize(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    (*out)[g] =
        pattern::Extension::IntersectionCountAnd(groups_[g].rows, a, b);
  }
}

void BackgroundModel::WarmGroupCaches() const {
  for (size_t g = 0; g < groups_.size(); ++g) GroupCholesky(g);
}

MeanStatisticMarginal BackgroundModel::MeanStatMarginal(
    const pattern::Extension& extension) const {
  SISD_CHECK(!extension.empty());
  return MeanStatMarginalFromCounts(GroupCounts(extension),
                                    double(extension.count()));
}

MeanStatisticMarginal BackgroundModel::MeanStatMarginalFromCounts(
    const std::vector<size_t>& counts, double size) const {
  SISD_CHECK(counts.size() == groups_.size());
  SISD_CHECK(size > 0.0);
  MeanStatisticMarginal out;
  out.mean = linalg::Vector(dim_);
  out.cov = linalg::Matrix(dim_, dim_);
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (counts[g] == 0) continue;
    const double weight = double(counts[g]);
    out.mean.AddScaled(groups_[g].mu, weight / size);
    out.cov.AddScaled(groups_[g].sigma, weight / (size * size));
  }
  return out;
}

std::vector<DirectionalTerm> BackgroundModel::DirectionalTerms(
    const pattern::Extension& extension, const linalg::Vector& w,
    const linalg::Vector& anchor) const {
  SISD_CHECK(w.size() == dim_ && anchor.size() == dim_);
  const std::vector<size_t> counts = GroupCounts(extension);
  std::vector<DirectionalTerm> terms;
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (counts[g] == 0) continue;
    DirectionalTerm term;
    term.s = groups_[g].sigma.QuadraticForm(w);
    term.d = (anchor - groups_[g].mu).Dot(w);
    term.count = counts[g];
    terms.push_back(term);
  }
  return terms;
}

Result<double> BackgroundModel::UpdateLocation(
    const pattern::Extension& extension, const linalg::Vector& target_mean) {
  if (extension.empty()) {
    return Status::InvalidArgument("location update with empty extension");
  }
  if (target_mean.size() != dim_) {
    return Status::InvalidArgument("target mean dimension mismatch");
  }
  // Average mean and covariance over the extension (before splitting:
  // values are identical either way, but we need the split groups to
  // apply the update, so split first).
  const std::vector<size_t> inside = SplitGroupsFor(extension);
  const double size = double(extension.count());
  linalg::Vector mu_bar(dim_);
  linalg::Matrix sigma_bar(dim_, dim_);
  for (size_t g : inside) {
    const double weight = double(groups_[g].count()) / size;
    mu_bar.AddScaled(groups_[g].mu, weight);
    sigma_bar.AddScaled(groups_[g].sigma, weight);
  }
  Result<linalg::Cholesky> chol = linalg::Cholesky::Compute(sigma_bar);
  if (!chol.ok()) {
    return Status::NumericalError(
        "average covariance over extension not SPD: " +
        chol.status().message());
  }
  const linalg::Vector lambda = chol.Value().Solve(target_mean - mu_bar);
  for (size_t g : inside) {
    groups_[g].mu += groups_[g].sigma.MatVec(lambda);
    // Covariance unchanged: cached factorization stays valid.
  }
  return lambda.Norm();
}

Result<double> BackgroundModel::UpdateSpread(
    const pattern::Extension& extension, const linalg::Vector& w,
    const linalg::Vector& anchor, double target_variance) {
  if (extension.empty()) {
    return Status::InvalidArgument("spread update with empty extension");
  }
  if (w.size() != dim_ || anchor.size() != dim_) {
    return Status::InvalidArgument("direction/anchor dimension mismatch");
  }
  if (!(target_variance > 0.0)) {
    return Status::InvalidArgument("target variance must be positive");
  }
  const double norm = w.Norm();
  if (std::fabs(norm - 1.0) > 1e-8) {
    return Status::InvalidArgument("direction must be a unit vector");
  }
  const std::vector<size_t> inside = SplitGroupsFor(extension);
  std::vector<DirectionalTerm> terms;
  terms.reserve(inside.size());
  for (size_t g : inside) {
    DirectionalTerm term;
    term.s = groups_[g].sigma.QuadraticForm(w);
    term.d = (anchor - groups_[g].mu).Dot(w);
    term.count = groups_[g].count();
    terms.push_back(term);
  }
  SISD_ASSIGN_OR_RETURN(lambda, SolveSpreadLambda(terms, target_variance));

  for (size_t g : inside) {
    ParameterGroup& group = groups_[g];
    const double s = group.sigma.QuadraticForm(w);
    const double d = (anchor - group.mu).Dot(w);
    const double denom = 1.0 + lambda * s;
    SISD_CHECK(denom > 0.0);
    const linalg::Vector sigma_w = group.sigma.MatVec(w);
    // Eq. (10): mu += lambda * d * Sigma w / (1 + lambda s).
    group.mu.AddScaled(sigma_w, lambda * d / denom);
    // Eq. (11): Sigma -= lambda * (Sigma w)(Sigma w)' / (1 + lambda s).
    const double alpha = -lambda / denom;
    group.sigma.AddOuter(sigma_w, alpha);
    group.sigma.Symmetrize();
    RefreshGroupFactorRankOne(g, sigma_w, alpha);
  }
  return lambda;
}

double BackgroundModel::LogDensity(const linalg::Matrix& y) const {
  SISD_CHECK(y.rows() == num_rows_ && y.cols() == dim_);
  double acc = 0.0;
  for (size_t g = 0; g < groups_.size(); ++g) {
    const ParameterGroup& group = groups_[g];
    if (group.count() == 0) continue;
    const linalg::Cholesky& chol = GroupCholesky(g);
    const double logdet = chol.LogDeterminant();
    const double constant =
        -0.5 * (double(dim_) * kSqrtTwoPiLog + logdet);
    for (size_t i : group.rows.ToRows()) {
      const linalg::Vector diff = y.Row(i) - group.mu;
      acc += constant - 0.5 * chol.InverseQuadraticForm(diff);
    }
  }
  return acc;
}

double BackgroundModel::KlDivergenceFrom(const BackgroundModel& other) const {
  SISD_CHECK(num_rows_ == other.num_rows_ && dim_ == other.dim_);
  double acc = 0.0;
  for (size_t i = 0; i < num_rows_; ++i) {
    const size_t gp = GroupOf(i);
    const size_t gq = other.GroupOf(i);
    const ParameterGroup& p = groups_[gp];
    const ParameterGroup& q = other.groups_[gq];
    // KL(N(mu_p, S_p) || N(mu_q, S_q)).
    const linalg::Cholesky& chol_q = other.GroupCholesky(gq);
    const linalg::Matrix q_inv_p = chol_q.SolveMatrix(p.sigma);
    const linalg::Vector diff = q.mu - p.mu;
    acc += 0.5 * (q_inv_p.Trace() + chol_q.InverseQuadraticForm(diff) -
                  double(dim_) + chol_q.LogDeterminant() -
                  GroupCholesky(gp).LogDeterminant());
  }
  return acc;
}

double BackgroundModel::MaxParameterDelta(const BackgroundModel& other) const {
  SISD_CHECK(num_rows_ == other.num_rows_ && dim_ == other.dim_);
  double best = 0.0;
  // Compare per matching group pairs touched by rows: group structures can
  // differ, so compare row-wise but skip rows whose (group, group) pair was
  // already compared.
  std::vector<char> seen(groups_.size() * other.groups_.size(), 0);
  for (size_t i = 0; i < num_rows_; ++i) {
    const size_t gp = GroupOf(i);
    const size_t gq = other.GroupOf(i);
    char& flag = seen[gp * other.groups_.size() + gq];
    if (flag) continue;
    flag = 1;
    best = std::max(best, linalg::MaxAbsDiff(groups_[gp].mu,
                                             other.groups_[gq].mu));
    best = std::max(best, linalg::MaxAbsDiff(groups_[gp].sigma,
                                             other.groups_[gq].sigma));
  }
  return best;
}

linalg::Vector BackgroundModel::ExpectedSubgroupMean(
    const pattern::Extension& extension) const {
  return MeanStatMarginal(extension).mean;
}

double BackgroundModel::ExpectedDirectionalVariance(
    const pattern::Extension& extension, const linalg::Vector& w,
    const linalg::Vector& anchor) const {
  const std::vector<DirectionalTerm> terms =
      DirectionalTerms(extension, w, anchor);
  double acc = 0.0;
  size_t total = 0;
  for (const DirectionalTerm& term : terms) {
    acc += double(term.count) * (term.s + term.d * term.d);
    total += term.count;
  }
  SISD_CHECK(total > 0);
  return acc / double(total);
}

std::vector<size_t> BackgroundModel::SplitGroupsFor(
    const pattern::Extension& extension) {
  SISD_CHECK(extension.universe_size() == num_rows_);
  std::vector<size_t> inside;
  const size_t original_group_count = groups_.size();
  for (size_t g = 0; g < original_group_count; ++g) {
    const size_t overlap =
        pattern::Extension::IntersectionCount(groups_[g].rows, extension);
    if (overlap == 0) continue;
    if (overlap == groups_[g].count()) {
      inside.push_back(g);
      continue;
    }
    // Split: rows of g inside the extension move to a new group.
    pattern::Extension moved =
        pattern::Extension::Intersect(groups_[g].rows, extension);
    ParameterGroup fresh;
    fresh.mu = groups_[g].mu;
    fresh.sigma = groups_[g].sigma;
    fresh.rows = moved;
    const size_t fresh_id = groups_.size();
    for (size_t row : moved.ToRows()) {
      groups_[g].rows.Erase(row);
      group_of_row_[row] = static_cast<uint32_t>(fresh_id);
    }
    groups_.push_back(std::move(fresh));
    group_chol_.push_back(group_chol_[g]);  // same Sigma: share the factor
    inside.push_back(fresh_id);
  }
  return inside;
}

void BackgroundModel::RefreshGroupFactorRankOne(size_t g,
                                                const linalg::Vector& v,
                                                double alpha) {
  if (!group_chol_[g]) return;  // nothing cached: stays lazy
  // Copy-on-write: split siblings share the factor pointer, and the old
  // factor must not mutate under readers holding the shared_ptr.
  auto updated = std::make_shared<linalg::Cholesky>(*group_chol_[g]);
  if (updated->RankOne(v, alpha).ok()) {
    group_chol_[g] = std::move(updated);
  } else {
    // Downdate lost positive definiteness numerically (Sigma itself stays
    // SPD by Theorem 2): drop to the lazy full refactorization path.
    group_chol_[g] = nullptr;
  }
}

Result<double> SolveSpreadLambda(const std::vector<DirectionalTerm>& terms,
                                 double target_variance, double tolerance,
                                 int max_iterations) {
  if (terms.empty()) {
    return Status::InvalidArgument("no directional terms");
  }
  if (!(target_variance > 0.0)) {
    return Status::InvalidArgument("target variance must be positive");
  }
  double s_max = 0.0;
  size_t total = 0;
  for (const DirectionalTerm& term : terms) {
    if (!(term.s > 0.0)) {
      return Status::NumericalError(
          "nonpositive variance along direction (covariance not SPD?)");
    }
    s_max = std::max(s_max, term.s);
    total += term.count;
  }
  const double target = double(total) * target_variance;

  // LHS(lambda) = sum count * [s/(1+lambda s) + d^2/(1+lambda s)^2],
  // strictly decreasing from +inf (lambda -> -1/s_max) to 0 (lambda -> inf).
  auto lhs_and_derivative = [&terms](double lambda) {
    double value = 0.0;
    double derivative = 0.0;
    for (const DirectionalTerm& term : terms) {
      const double denom = 1.0 + lambda * term.s;
      const double c = double(term.count);
      const double inv = 1.0 / denom;
      value += c * (term.s * inv + term.d * term.d * inv * inv);
      derivative -= c * (term.s * term.s * inv * inv +
                         2.0 * term.d * term.d * term.s * inv * inv * inv);
    }
    return std::pair<double, double>(value, derivative);
  };

  // Bracket the root.
  const double lambda_min = -1.0 / s_max;
  double lo, hi;
  const double at_zero = lhs_and_derivative(0.0).first;
  if (at_zero == target) return 0.0;
  if (at_zero > target) {
    // Root is positive: expand hi until LHS < target.
    lo = 0.0;
    hi = 1.0 / s_max;
    for (int iter = 0; iter < 200 && lhs_and_derivative(hi).first > target;
         ++iter) {
      hi *= 2.0;
    }
    if (lhs_and_derivative(hi).first > target) {
      return Status::NumericalError("failed to bracket spread multiplier");
    }
  } else {
    // Root is negative: approach the pole from the right.
    hi = 0.0;
    double step = 0.5 * (-lambda_min);
    lo = lambda_min + step;
    for (int iter = 0; iter < 200 && lhs_and_derivative(lo).first < target;
         ++iter) {
      step *= 0.5;
      lo = lambda_min + step;
    }
    if (lhs_and_derivative(lo).first < target) {
      return Status::NumericalError("failed to bracket spread multiplier");
    }
  }

  // Safeguarded Newton within [lo, hi].
  double lambda = 0.5 * (lo + hi);
  for (int iter = 0; iter < max_iterations; ++iter) {
    const auto [value, derivative] = lhs_and_derivative(lambda);
    const double residual = value - target;
    if (std::fabs(residual) <=
        tolerance * std::max(1.0, std::fabs(target))) {
      return lambda;
    }
    if (residual > 0.0) {
      lo = lambda;  // LHS too big -> root is to the right
    } else {
      hi = lambda;
    }
    double next = lambda;
    if (derivative < 0.0) {
      next = lambda - residual / derivative;
    }
    if (!(next > lo && next < hi)) {
      next = 0.5 * (lo + hi);  // bisection fallback
    }
    if (next == lambda) {
      return lambda;  // interval exhausted at machine precision
    }
    lambda = next;
  }
  return lambda;  // best effort after max iterations; residual is tiny
}

}  // namespace sisd::model
