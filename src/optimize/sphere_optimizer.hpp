/// \file sphere_optimizer.hpp
/// \brief Riemannian gradient ascent on the unit sphere — the standalone
/// replacement for the paper's use of the Manopt MATLAB toolbox (§II-D).
///
/// The Riemannian gradient of a function restricted to the sphere is the
/// Euclidean gradient projected onto the tangent space at `w`
/// (`(Id - w w') grad`); the retraction is renormalization. Steps use Armijo
/// backtracking, and the search is multi-started from the extreme
/// variance-ratio directions plus random unit vectors, because the paper
/// notes the problem "can have many local optima".

#ifndef SISD_OPTIMIZE_SPHERE_OPTIMIZER_HPP_
#define SISD_OPTIMIZE_SPHERE_OPTIMIZER_HPP_

#include <cstdint>
#include <vector>

#include "linalg/vector.hpp"
#include "optimize/spread_objective.hpp"
#include "random/rng.hpp"

namespace sisd::optimize {

/// \brief Optimizer settings.
struct SphereOptimizerConfig {
  int max_iterations = 300;        ///< ascent steps per start
  int max_backtracks = 40;         ///< Armijo halvings per step
  double gradient_tolerance = 1e-9;  ///< stop when |Riemannian grad| small
  double armijo_c1 = 1e-4;         ///< sufficient-increase constant
  double initial_step = 1.0;       ///< first trial step size
  int num_random_starts = 4;       ///< random restarts on top of seeded ones
  uint64_t seed = 13;              ///< RNG seed for the random starts
};

/// \brief Result of one optimization run.
struct SphereOptimum {
  linalg::Vector direction;  ///< best unit vector found
  double value = 0.0;        ///< objective value at `direction`
  int iterations = 0;        ///< total ascent iterations across starts
  int starts = 0;            ///< number of starts tried
};

/// \brief Maximizes `objective` over the unit sphere.
///
/// Start points: the top/bottom eigenvectors of the *whitened* subgroup
/// scatter (extreme observed-vs-expected variance-ratio directions, the
/// natural suspects for surprising spread), plus random unit vectors.
/// For 1-dimensional targets the answer is trivially `w = (1)`.
SphereOptimum MaximizeOnSphere(const SpreadObjective& objective,
                               const SphereOptimizerConfig& config);

/// \brief Maximizes the objective under a 2-sparsity constraint by sweeping
/// all coordinate pairs (paper §III-C): for each pair of target dimensions,
/// the restricted 2-d problem is solved on the circle (dense angular grid +
/// golden-section refinement), and the best pair wins.
///
/// Returns the full-dimensional direction (zeros outside the chosen pair)
/// and fills `chosen_pair` when non-null.
SphereOptimum MaximizePairSparse(const SpreadObjective& objective,
                                 std::pair<size_t, size_t>* chosen_pair);

}  // namespace sisd::optimize

#endif  // SISD_OPTIMIZE_SPHERE_OPTIMIZER_HPP_
