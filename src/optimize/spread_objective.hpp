/// \file spread_objective.hpp
/// \brief The spread-pattern objective: IC of the directional variance as a
/// function of the unit direction `w` (paper Eq. 21), with analytic gradient.
///
/// For a fixed subgroup extension `I`, the Description Length is constant,
/// so maximizing SI equals maximizing the Information Content
///   IC(w) = -log p_{g_I^w}( w' S w )
/// where `S` is the subgroup's empirical scatter and the density is the
/// Zhang surrogate fitted to the model coefficients `a_g = w'Sigma_g w/|I|`.
/// The paper's authors "computed the gradient analytically (details
/// omitted)"; the full derivation lives here (see DESIGN.md §5.3) and is
/// verified against finite differences in tests/optimize/.

#ifndef SISD_OPTIMIZE_SPREAD_OBJECTIVE_HPP_
#define SISD_OPTIMIZE_SPREAD_OBJECTIVE_HPP_

#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "model/background_model.hpp"
#include "pattern/extension.hpp"

namespace sisd::optimize {

/// \brief Evaluates IC(w) and its Euclidean gradient for a fixed subgroup.
class SpreadObjective {
 public:
  /// Builds the objective for subgroup `extension` with target data `y`
  /// under `model`. Precomputes the subgroup scatter matrix and snapshots
  /// the per-group covariances (the model must outlive the objective only
  /// if `RebindModel` is used; parameters are copied).
  SpreadObjective(const model::BackgroundModel& model,
                  const pattern::Extension& extension,
                  const linalg::Matrix& y);

  /// Dimensionality of the direction vector.
  size_t dim() const { return scatter_.rows(); }

  /// Number of rows in the subgroup.
  size_t subgroup_size() const { return size_; }

  /// The subgroup's empirical scatter matrix (around its empirical mean).
  const linalg::Matrix& scatter() const { return scatter_; }

  /// Mixture covariance `sum_i Sigma_i / |I|` over the subgroup (used to
  /// seed the optimizer with extreme variance-ratio directions).
  const linalg::Matrix& mixture_covariance() const { return mixture_cov_; }

  /// IC at unit direction `w`.
  double Value(const linalg::Vector& w) const;

  /// IC and Euclidean gradient at unit direction `w`.
  double ValueAndGradient(const linalg::Vector& w,
                          linalg::Vector* gradient) const;

  /// Observed directional variance `w' S w` (Eq. 2 statistic).
  double ObservedVariance(const linalg::Vector& w) const;

  /// Builds a reduced objective over the target coordinates in `coords`
  /// (for the 2-sparsity sweep of §III-C).
  SpreadObjective Restricted(const std::vector<size_t>& coords) const;

 private:
  struct GroupTerm {
    linalg::Matrix sigma;
    double count = 0.0;
  };

  SpreadObjective() = default;

  /// Shared implementation; `gradient` may be null.
  double Evaluate(const linalg::Vector& w, linalg::Vector* gradient) const;

  std::vector<GroupTerm> groups_;
  linalg::Matrix scatter_;
  linalg::Matrix mixture_cov_;
  double size_ = 0.0;
};

}  // namespace sisd::optimize

#endif  // SISD_OPTIMIZE_SPREAD_OBJECTIVE_HPP_
