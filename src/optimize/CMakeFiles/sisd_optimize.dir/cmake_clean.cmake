file(REMOVE_RECURSE
  "CMakeFiles/sisd_optimize.dir/sphere_optimizer.cpp.o"
  "CMakeFiles/sisd_optimize.dir/sphere_optimizer.cpp.o.d"
  "CMakeFiles/sisd_optimize.dir/spread_objective.cpp.o"
  "CMakeFiles/sisd_optimize.dir/spread_objective.cpp.o.d"
  "libsisd_optimize.a"
  "libsisd_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisd_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
