file(REMOVE_RECURSE
  "libsisd_optimize.a"
)
