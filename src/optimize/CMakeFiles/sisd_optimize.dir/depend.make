# Empty dependencies file for sisd_optimize.
# This may be replaced when dependencies are built.
