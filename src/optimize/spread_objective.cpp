#include "optimize/spread_objective.hpp"

#include <cmath>

#include "pattern/patterns.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace sisd::optimize {

namespace {

/// Observed standardized values below this are clamped so the objective
/// stays differentiable; IC is astronomically large there anyway.
constexpr double kMinStandardized = 1e-12;

}  // namespace

SpreadObjective::SpreadObjective(const model::BackgroundModel& model,
                                 const pattern::Extension& extension,
                                 const linalg::Matrix& y) {
  SISD_CHECK(!extension.empty());
  size_ = double(extension.count());
  const std::vector<size_t> counts = model.GroupCounts(extension);
  for (size_t g = 0; g < counts.size(); ++g) {
    if (counts[g] == 0) continue;
    GroupTerm term;
    term.sigma = model.group(g).sigma;
    term.count = double(counts[g]);
    groups_.push_back(std::move(term));
  }
  const std::vector<size_t> rows = extension.ToRows();
  const linalg::Vector mean = stats::ColumnMeans(y, rows);
  scatter_ = stats::ScatterAround(y, rows, mean);

  mixture_cov_ = linalg::Matrix(y.cols(), y.cols());
  for (const GroupTerm& term : groups_) {
    mixture_cov_.AddScaled(term.sigma, term.count / size_);
  }
}

double SpreadObjective::Value(const linalg::Vector& w) const {
  return Evaluate(w, nullptr);
}

double SpreadObjective::ValueAndGradient(const linalg::Vector& w,
                                         linalg::Vector* gradient) const {
  SISD_CHECK(gradient != nullptr);
  return Evaluate(w, gradient);
}

double SpreadObjective::ObservedVariance(const linalg::Vector& w) const {
  return scatter_.QuadraticForm(w);
}

SpreadObjective SpreadObjective::Restricted(
    const std::vector<size_t>& coords) const {
  SpreadObjective out;
  out.size_ = size_;
  out.scatter_ = scatter_.Submatrix(coords);
  out.mixture_cov_ = mixture_cov_.Submatrix(coords);
  for (const GroupTerm& term : groups_) {
    GroupTerm reduced;
    reduced.sigma = term.sigma.Submatrix(coords);
    reduced.count = term.count;
    out.groups_.push_back(std::move(reduced));
  }
  return out;
}

double SpreadObjective::Evaluate(const linalg::Vector& w,
                                 linalg::Vector* gradient) const {
  SISD_CHECK(w.size() == dim());

  // Power sums of the coefficients a_g = w' Sigma_g w / |I| and their
  // per-group matrix-vector products (reused in the gradient).
  double a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::vector<linalg::Vector> sigma_w;
  std::vector<double> a_of_group;
  sigma_w.reserve(groups_.size());
  a_of_group.reserve(groups_.size());
  for (const GroupTerm& term : groups_) {
    linalg::Vector sw = term.sigma.MatVec(w);
    const double a = w.Dot(sw) / size_;
    SISD_CHECK(a > 0.0);
    a_of_group.push_back(a);
    sigma_w.push_back(std::move(sw));
    a1 += term.count * a;
    a2 += term.count * a * a;
    a3 += term.count * a * a * a;
  }
  const double alpha = a3 / a2;
  const double beta = a1 - a2 * a2 / a3;
  const double m = (a2 * a2 * a2) / (a3 * a3);

  const linalg::Vector scatter_w = scatter_.MatVec(w);
  const double g_val = w.Dot(scatter_w);

  double u = (g_val - beta) / alpha;
  const bool clamped = u < kMinStandardized;
  if (clamped) u = kMinStandardized;

  const double half_m = 0.5 * m;
  const double ic = std::log(alpha) + half_m * std::log(2.0) +
                    stats::LogGamma(half_m) -
                    (half_m - 1.0) * std::log(u) + 0.5 * u;

  if (gradient == nullptr) return ic;

  // dIC/du, and partials w.r.t. (g, alpha, beta, m).
  const double dic_du = -(half_m - 1.0) / u + 0.5;
  const double dic_dg = clamped ? 0.0 : dic_du / alpha;
  const double dic_dbeta = clamped ? 0.0 : -dic_du / alpha;
  const double dic_dalpha =
      1.0 / alpha + (clamped ? 0.0 : dic_du * (-u / alpha));
  const double dic_dm = 0.5 * std::log(2.0) +
                        0.5 * stats::Digamma(half_m) - 0.5 * std::log(u);

  // Chain through alpha(A2,A3), beta(A1,A2,A3), m(A2,A3).
  const double dalpha_da2 = -a3 / (a2 * a2);
  const double dalpha_da3 = 1.0 / a2;
  const double dbeta_da1 = 1.0;
  const double dbeta_da2 = -2.0 * a2 / a3;
  const double dbeta_da3 = (a2 / a3) * (a2 / a3);
  const double dm_da2 = 3.0 * a2 * a2 / (a3 * a3);
  const double dm_da3 = -2.0 * (a2 * a2 * a2) / (a3 * a3 * a3);

  const double dic_da1 = dic_dbeta * dbeta_da1;
  const double dic_da2 = dic_dalpha * dalpha_da2 + dic_dbeta * dbeta_da2 +
                         dic_dm * dm_da2;
  const double dic_da3 = dic_dalpha * dalpha_da3 + dic_dbeta * dbeta_da3 +
                         dic_dm * dm_da3;

  linalg::Vector grad(dim());
  // dg/dw = 2 S w.
  grad.AddScaled(scatter_w, 2.0 * dic_dg);
  // dA_k/dw = sum_g count_g * k * a_g^{k-1} * (2 Sigma_g w / |I|).
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const double a = a_of_group[gi];
    const double coeff =
        dic_da1 + dic_da2 * 2.0 * a + dic_da3 * 3.0 * a * a;
    grad.AddScaled(sigma_w[gi], coeff * 2.0 * groups_[gi].count / size_);
  }
  *gradient = std::move(grad);
  return ic;
}

}  // namespace sisd::optimize
