#include "optimize/sphere_optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"

namespace sisd::optimize {

namespace {

/// One gradient-ascent run from `start`; returns the local optimum.
SphereOptimum AscendFrom(const SpreadObjective& objective,
                         const SphereOptimizerConfig& config,
                         linalg::Vector start) {
  SphereOptimum out;
  linalg::Vector w = start.Normalized();
  linalg::Vector gradient(w.size());
  double value = objective.ValueAndGradient(w, &gradient);
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    // Riemannian gradient: project onto the tangent space at w.
    linalg::Vector riemannian = gradient;
    riemannian.AddScaled(w, -gradient.Dot(w));
    const double grad_norm = riemannian.Norm();
    if (grad_norm < config.gradient_tolerance) break;

    double step = config.initial_step;
    bool improved = false;
    for (int bt = 0; bt < config.max_backtracks; ++bt) {
      linalg::Vector trial = w;
      trial.AddScaled(riemannian, step);
      const double trial_norm = trial.Norm();
      if (trial_norm > 1e-12) {
        trial /= trial_norm;
        const double trial_value = objective.Value(trial);
        if (trial_value >=
            value + config.armijo_c1 * step * grad_norm * grad_norm) {
          w = std::move(trial);
          value = objective.ValueAndGradient(w, &gradient);
          improved = true;
          break;
        }
      }
      step *= 0.5;
    }
    ++out.iterations;
    if (!improved) break;
  }
  out.direction = std::move(w);
  out.value = value;
  return out;
}

/// Whitened-scatter eigenvector starts: directions extremizing the ratio of
/// observed to expected variance, i.e. generalized eigenvectors of
/// (scatter, mixture covariance).
std::vector<linalg::Vector> SeedDirections(const SpreadObjective& objective) {
  std::vector<linalg::Vector> seeds;
  const size_t d = objective.dim();
  Result<linalg::Cholesky> chol =
      linalg::Cholesky::Compute(objective.mixture_covariance());
  if (chol.ok()) {
    // B = L^{-1} S L^{-T}; eigenvectors u of B map to w = L^{-T} u.
    const linalg::Matrix& l = chol.Value().L();
    linalg::Matrix b(d, d);
    // Compute L^{-1} S first (solve L X = S column-wise).
    linalg::Matrix linv_s(d, d);
    for (size_t c = 0; c < d; ++c) {
      linalg::Vector col = objective.scatter().Col(c);
      linalg::Vector sol = chol.Value().ForwardSolve(col);
      for (size_t r = 0; r < d; ++r) linv_s(r, c) = sol[r];
    }
    // Then B' = L^{-1} (L^{-1} S)' => B = L^{-1} S L^{-T} (symmetric).
    linalg::Matrix linv_s_t = linv_s.Transposed();
    for (size_t c = 0; c < d; ++c) {
      linalg::Vector col = linv_s_t.Col(c);
      linalg::Vector sol = chol.Value().ForwardSolve(col);
      for (size_t r = 0; r < d; ++r) b(r, c) = sol[r];
    }
    b.Symmetrize();
    Result<linalg::EigenDecomposition> eig = linalg::SymmetricEigen(b);
    if (eig.ok()) {
      // Back-substitute through L' and normalize: top and bottom directions.
      auto back = [&](const linalg::Vector& u) {
        // Solve L' w = u.
        linalg::Vector w(d);
        for (size_t ii = d; ii-- > 0;) {
          double acc = u[ii];
          for (size_t k = ii + 1; k < d; ++k) acc -= l(k, ii) * w[k];
          w[ii] = acc / l(ii, ii);
        }
        return w.Normalized();
      };
      seeds.push_back(back(eig.Value().Eigenvector(0)));
      if (d > 1) {
        seeds.push_back(back(eig.Value().Eigenvector(d - 1)));
      }
    }
  }
  if (seeds.empty()) {
    // Fall back to raw scatter eigenvectors.
    Result<linalg::EigenDecomposition> eig =
        linalg::SymmetricEigen(objective.scatter());
    if (eig.ok()) {
      seeds.push_back(eig.Value().Eigenvector(0).Normalized());
      if (d > 1) {
        seeds.push_back(eig.Value().Eigenvector(d - 1).Normalized());
      }
    }
  }
  return seeds;
}

}  // namespace

SphereOptimum MaximizeOnSphere(const SpreadObjective& objective,
                               const SphereOptimizerConfig& config) {
  const size_t d = objective.dim();
  SISD_CHECK(d >= 1);
  if (d == 1) {
    SphereOptimum out;
    out.direction = linalg::Vector{1.0};
    out.value = objective.Value(out.direction);
    out.starts = 1;
    return out;
  }

  std::vector<linalg::Vector> starts = SeedDirections(objective);
  random::Rng rng(config.seed);
  for (int r = 0; r < config.num_random_starts; ++r) {
    starts.push_back(rng.UnitSphere(d));
  }

  SphereOptimum best;
  best.value = -std::numeric_limits<double>::infinity();
  for (linalg::Vector& start : starts) {
    SphereOptimum candidate = AscendFrom(objective, config, std::move(start));
    best.iterations += candidate.iterations;
    ++best.starts;
    if (candidate.value > best.value) {
      best.value = candidate.value;
      best.direction = std::move(candidate.direction);
    }
  }
  return best;
}

SphereOptimum MaximizePairSparse(const SpreadObjective& objective,
                                 std::pair<size_t, size_t>* chosen_pair) {
  const size_t d = objective.dim();
  SISD_CHECK(d >= 2);
  SphereOptimum best;
  best.value = -std::numeric_limits<double>::infinity();
  std::pair<size_t, size_t> best_pair{0, 1};

  for (size_t j = 0; j < d; ++j) {
    for (size_t k = j + 1; k < d; ++k) {
      SpreadObjective reduced = objective.Restricted({j, k});
      // Dense angular scan over the half-circle (w and -w are equivalent).
      const int kGrid = 256;
      double best_theta = 0.0;
      double best_value = -std::numeric_limits<double>::infinity();
      for (int t = 0; t < kGrid; ++t) {
        const double theta = M_PI * double(t) / double(kGrid);
        const linalg::Vector w{std::cos(theta), std::sin(theta)};
        const double value = reduced.Value(w);
        if (value > best_value) {
          best_value = value;
          best_theta = theta;
        }
      }
      // Golden-section refinement around the best grid cell.
      const double kGolden = 0.6180339887498949;
      double lo = best_theta - M_PI / kGrid;
      double hi = best_theta + M_PI / kGrid;
      auto value_at = [&reduced](double theta) {
        return reduced.Value(
            linalg::Vector{std::cos(theta), std::sin(theta)});
      };
      double x1 = hi - kGolden * (hi - lo);
      double x2 = lo + kGolden * (hi - lo);
      double f1 = value_at(x1);
      double f2 = value_at(x2);
      for (int it = 0; it < 60; ++it) {
        if (f1 < f2) {
          lo = x1;
          x1 = x2;
          f1 = f2;
          x2 = lo + kGolden * (hi - lo);
          f2 = value_at(x2);
        } else {
          hi = x2;
          x2 = x1;
          f2 = f1;
          x1 = hi - kGolden * (hi - lo);
          f1 = value_at(x1);
        }
      }
      const double theta = 0.5 * (lo + hi);
      const double value = value_at(theta);
      if (value > best.value) {
        best.value = value;
        best_pair = {j, k};
        linalg::Vector w(d);
        w[j] = std::cos(theta);
        w[k] = std::sin(theta);
        best.direction = std::move(w);
      }
      ++best.starts;
    }
  }
  if (chosen_pair != nullptr) *chosen_pair = best_pair;
  return best;
}

}  // namespace sisd::optimize
